#include "service/service_metrics.h"

#include "common/string_util.h"

namespace nwc {

std::string MetricsSnapshot::ToString() const {
  std::string out;
  out += StrFormat("queries:    %llu (%llu failed, %llu without result)\n",
                   static_cast<unsigned long long>(queries),
                   static_cast<unsigned long long>(failures),
                   static_cast<unsigned long long>(not_found));
  out += StrFormat("rejections: %llu, max queue depth %llu, slow queries %llu\n",
                   static_cast<unsigned long long>(rejections),
                   static_cast<unsigned long long>(max_queue_depth),
                   static_cast<unsigned long long>(slow_queries));
  out += StrFormat(
      "robustness: %llu cancelled, %llu deadline, %llu io errors, %llu shed, %llu retries\n",
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(io_errors), static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(retries));
  out += StrFormat("wall:       %.3f s (%.1f queries/sec)\n", wall_seconds, Qps());
  out += StrFormat("latency:    p50 %llu us, p95 %llu us, p99 %llu us (min %llu, mean %.1f, max %llu)\n",
                   static_cast<unsigned long long>(latency_p50_us),
                   static_cast<unsigned long long>(latency_p95_us),
                   static_cast<unsigned long long>(latency_p99_us),
                   static_cast<unsigned long long>(latency_min_us), latency_mean_us,
                   static_cast<unsigned long long>(latency_max_us));
  out += StrFormat("node reads: %llu (traversal %llu, window %llu), cache hits %llu\n",
                   static_cast<unsigned long long>(total_reads()),
                   static_cast<unsigned long long>(traversal_reads),
                   static_cast<unsigned long long>(window_query_reads),
                   static_cast<unsigned long long>(cache_hits));
  out += StrFormat(
      "caching:    result cache %llu hits / %llu misses / %llu evictions "
      "(%llu entries, %llu bytes), window memo %llu hits\n",
      static_cast<unsigned long long>(result_cache_hits),
      static_cast<unsigned long long>(result_cache_misses),
      static_cast<unsigned long long>(result_cache_evictions),
      static_cast<unsigned long long>(result_cache_entries),
      static_cast<unsigned long long>(result_cache_bytes),
      static_cast<unsigned long long>(window_memo_hits));
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  out += StrFormat("\"queries\":%llu,\"failures\":%llu,\"not_found\":%llu,",
                   static_cast<unsigned long long>(queries),
                   static_cast<unsigned long long>(failures),
                   static_cast<unsigned long long>(not_found));
  out += StrFormat("\"rejections\":%llu,\"slow_queries\":%llu,\"max_queue_depth\":%llu,",
                   static_cast<unsigned long long>(rejections),
                   static_cast<unsigned long long>(slow_queries),
                   static_cast<unsigned long long>(max_queue_depth));
  out += StrFormat(
      "\"cancelled\":%llu,\"deadline_exceeded\":%llu,\"io_errors\":%llu,"
      "\"shed\":%llu,\"retries\":%llu,",
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(io_errors), static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(retries));
  out += StrFormat("\"wall_seconds\":%.6f,\"qps\":%.3f,", wall_seconds, Qps());
  out += StrFormat(
      "\"latency_us\":{\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,"
      "\"min\":%llu,\"mean\":%.3f,\"max\":%llu},",
      static_cast<unsigned long long>(latency_p50_us),
      static_cast<unsigned long long>(latency_p95_us),
      static_cast<unsigned long long>(latency_p99_us),
      static_cast<unsigned long long>(latency_min_us), latency_mean_us,
      static_cast<unsigned long long>(latency_max_us));
  out += StrFormat(
      "\"node_reads\":{\"total\":%llu,\"traversal\":%llu,\"window\":%llu,"
      "\"cache_hits\":%llu},",
      static_cast<unsigned long long>(total_reads()),
      static_cast<unsigned long long>(traversal_reads),
      static_cast<unsigned long long>(window_query_reads),
      static_cast<unsigned long long>(cache_hits));
  out += StrFormat(
      "\"result_cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"entries\":%llu,\"bytes\":%llu},\"window_memo_hits\":%llu}",
      static_cast<unsigned long long>(result_cache_hits),
      static_cast<unsigned long long>(result_cache_misses),
      static_cast<unsigned long long>(result_cache_evictions),
      static_cast<unsigned long long>(result_cache_entries),
      static_cast<unsigned long long>(result_cache_bytes),
      static_cast<unsigned long long>(window_memo_hits));
  return out;
}

void ServiceMetrics::RecordQuery(uint64_t latency_micros, const IoCounter& io, StatusCode code,
                                 bool found) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.Record(latency_micros);
  io_.Add(io);
  ++queries_;
  if (code != StatusCode::kOk) {
    ++failures_;
    switch (code) {
      case StatusCode::kCancelled:
        ++cancelled_;
        break;
      case StatusCode::kDeadlineExceeded:
        ++deadline_exceeded_;
        break;
      case StatusCode::kIoError:
        ++io_errors_;
        break;
      default:
        break;
    }
  } else if (!found) {
    ++not_found_;
  }
}

void ServiceMetrics::RecordRejection() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejections_;
}

void ServiceMetrics::RecordShed(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  shed_ += count;
}

void ServiceMetrics::RecordRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++retries_;
}

void ServiceMetrics::RecordQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth > max_queue_depth_) max_queue_depth_ = depth;
}

void ServiceMetrics::RecordSlowQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  ++slow_queries_;
}

void ServiceMetrics::RecordWindowMemoHits(uint64_t hits) {
  std::lock_guard<std::mutex> lock(mu_);
  window_memo_hits_ += hits;
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.queries = queries_;
  snapshot.failures = failures_;
  snapshot.not_found = not_found_;
  snapshot.rejections = rejections_;
  snapshot.slow_queries = slow_queries_;
  snapshot.cancelled = cancelled_;
  snapshot.deadline_exceeded = deadline_exceeded_;
  snapshot.io_errors = io_errors_;
  snapshot.shed = shed_;
  snapshot.retries = retries_;
  snapshot.max_queue_depth = max_queue_depth_;
  snapshot.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  snapshot.latency_p50_us = latency_.Quantile(0.50);
  snapshot.latency_p95_us = latency_.Quantile(0.95);
  snapshot.latency_p99_us = latency_.Quantile(0.99);
  snapshot.latency_min_us = latency_.min();
  snapshot.latency_max_us = latency_.max();
  snapshot.latency_mean_us = latency_.Mean();
  snapshot.traversal_reads = io_.traversal_reads();
  snapshot.window_query_reads = io_.window_query_reads();
  snapshot.cache_hits = io_.cache_hits();
  snapshot.window_memo_hits = window_memo_hits_;
  // result_cache_* stay zero here; QueryService::SnapshotMetrics overlays
  // them from the ResultCache (the cache is its own source of truth).
  return snapshot;
}

LatencyHistogram ServiceMetrics::LatencySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_;
}

void ServiceMetrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.Reset();
  io_.Reset();
  queries_ = 0;
  failures_ = 0;
  not_found_ = 0;
  rejections_ = 0;
  slow_queries_ = 0;
  cancelled_ = 0;
  deadline_exceeded_ = 0;
  io_errors_ = 0;
  shed_ = 0;
  retries_ = 0;
  max_queue_depth_ = 0;
  window_memo_hits_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace nwc
