#ifndef NWC_SERVICE_SHARD_ROUTER_H_
#define NWC_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/rstar_tree.h"
#include "service/query_backend.h"
#include "service/query_service.h"
#include "service/session.h"
#include "service/snapshot.h"
#include "service/thread_pool.h"
#include "storage/fault_injector.h"

namespace nwc {

/// End of the Z-order key space: ZOrderKey interleaves two 16-bit grid
/// coordinates, so every key is < 2^32.
inline constexpr uint64_t kZOrderKeyEnd = 1ull << 32;

/// What a routed query does when one of its shards fails (injected fault,
/// shed, deadline) while others can still answer.
enum class PartialFailurePolicy {
  /// Surface the shard's typed error as the response status (default —
  /// never silently narrows the search).
  kFail,
  /// Skip the failed shard and answer from the rest, setting
  /// `degraded = true` on the response. The answer is the optimum over the
  /// shards that replied, which may miss the true optimum.
  kDegrade,
};

/// Sizing and semantics for a ShardRouter.
struct ShardRouterConfig {
  /// In-process shard count (>= 1). 1 degenerates to a single-instance
  /// service behind the router interface (no halo, no window cap).
  size_t num_shards = 1;

  /// Largest window extents any routed query may carry. These bound the
  /// halo width, so they are a *correctness* parameter: a query whose
  /// l/w exceeds them is rejected with FailedPrecondition rather than
  /// answered from trees whose replication no longer covers it. Must be
  /// > 0 when num_shards > 1.
  double max_window_length = 0.0;
  double max_window_width = 0.0;

  /// Halo width in units of the max window: each shard's tree replicates
  /// every object within (halo_factor * max_window_length,
  /// halo_factor * max_window_width) of its owned region. Factor 1 makes
  /// single-group answers exact (a group anchored at an owned object fits
  /// inside one window); the default 3 additionally keeps kNWC greedy
  /// blocking chains of depth <= 2 locally visible (see RouteKnwc). >= 1.
  double halo_factor = 3.0;

  PartialFailurePolicy partial_failure = PartialFailurePolicy::kFail;

  /// Per-shard execution stack configuration. `service.fault_plan` is
  /// overridden by the router-level plan below; `session.grid_space`, when
  /// empty, is widened to the global data space so every shard grids the
  /// same geometry.
  ServiceConfig service;
  SessionConfig session;
  RTreeOptions tree;

  /// Dynamic mode: back each shard with a SnapshotStore (ApplyUpdate
  /// becomes functional, routed to owning shards). Static mode binds each
  /// shard to an immutable Session.
  bool dynamic = false;
  /// SnapshotStore::Config::iwp_staleness_limit for dynamic shards.
  size_t iwp_staleness_limit = 0;

  /// Fault plan installed into shard services for resilience drills:
  /// `fault_shard` -1 installs it into every shard, >= 0 into exactly that
  /// shard (the scoped form exercises partial-failure handling).
  FaultPlan fault_plan = FaultPlan::None();
  int fault_shard = -1;

  /// Router executor threads serving the async submits (each routed
  /// request occupies one while it waits on shard futures; shard services
  /// have their own workers, so routing never self-deadlocks).
  size_t router_threads = 2;
  size_t router_queue_capacity = 256;

  Status Validate() const;
};

/// Decomposes the Z-order key range [key_lo, key_hi) into a conservative
/// cover of axis-aligned rects in data space: every point whose
/// ZOrderKey(p, space) falls in the range lies in some rect. The cover is
/// built from maximal aligned quadtree blocks of the Morton interval
/// (O(levels) blocks per boundary, ~100 worst case); blocks touching the
/// grid boundary extend to +-infinity because out-of-space points clamp
/// into boundary cells. Superset rects are sound everywhere they are used:
/// for routing they only *lower* the lower bound, for halo membership they
/// only *add* replication. Exposed for unit tests.
std::vector<Rect> ZOrderRangeRegion(uint64_t key_lo, uint64_t key_hi, const Rect& space);

/// Equal-count shard boundaries over `keys` (unsorted input, consumed):
/// returns num_shards + 1 strictly increasing values with front() == 0 and
/// back() == kZOrderKeyEnd; shard s owns keys in [b[s], b[s+1]). With
/// fewer distinct keys than shards, trailing shards own empty ranges.
/// Exposed for unit tests.
std::vector<uint64_t> EqualCountKeyBoundaries(std::vector<uint64_t> keys, size_t num_shards);

/// Spatially sharded serving: one QueryService (over a Session or
/// SnapshotStore) per Z-order range shard, behind the same QueryBackend
/// interface the network layer speaks.
///
/// **Partitioning.** Object positions map to Morton keys over the global
/// data space (the batch planner's ZOrderKey); the key space is split into
/// num_shards contiguous ranges with equal object counts at build time.
/// Ownership is by key comparison — exact and stable under updates — while
/// each range's *geometric region* (a conservative rect cover, fixed at
/// build) drives routing bounds and replication.
///
/// **Halo replication.** Each shard's tree holds its owned objects plus
/// every object within the halo of its region. A window of extents
/// (l, w) <= (max_window_length, max_window_width) containing an owned
/// object therefore lies entirely inside the shard's tree, so the shard's
/// local NWC answer over groups anchored at owned objects is exact, and
/// the min over shards is the global optimum.
///
/// **NWC routing.** Shards are visited in ascending order of
/// lb_s = min over region rects of MINDIST(q, rect.Inflated(l, w)) — a
/// lower bound on the distance of any group anchored in shard s under all
/// four measures — and the chain stops once lb_s exceeds the best distance
/// found (a query typically touches one or two shards).
///
/// **kNWC.** Scattered to every shard with the caller's (k, m); the merged
/// candidate groups are re-run through the greedy selection ascending by
/// (distance, member ids), which drops cross-shard duplicates (overlap of
/// a group with itself is n > m). Exact whenever the greedy rejection
/// chains stay within the halo (depth <= halo_factor - 1 windows); deeper
/// chains are the same adversarial tie-like structures the single-tree
/// engine already documents as approximate.
///
/// **Updates (dynamic mode).** Each mutation is applied to its owner shard
/// and to every shard whose halo contains the position — the same
/// deterministic rule for inserts and deletes, so replicas never drift.
/// Counts come from the owner shard only; the response epoch is the max
/// per-shard epoch. Shards publish independently, so a query racing an
/// update may observe it on some shards before others (each shard is
/// individually MVCC-consistent); quiesce updates for cross-shard
/// bit-exactness.
///
/// **Metrics.** SnapshotMetrics()/SnapshotLatencyHistogram() aggregate
/// over shards (counter sums / bucket-wise merge — `queries` counts
/// per-shard executions, so one routed query may count more than once);
/// AppendPrometheusText() adds per-shard `nwc_shard_*{shard="s"}` series
/// under distinct family names so aggregate families are never
/// double-counted.
///
/// ThreadSafety: every public member may be called from any thread.
class ShardRouter : public QueryBackend {
 public:
  /// Builds the partition, the per-shard index stacks and services, and
  /// the router executor. `objects` is the full dataset (the router
  /// replicates as needed); `config` must validate.
  static Result<std::unique_ptr<ShardRouter>> Open(std::vector<DataObject> objects,
                                                   const ShardRouterConfig& config);

  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Blocking routed execution (the async submits run these on the router
  /// executor). Deadlines are measured from this call and span the whole
  /// shard chain.
  NwcResponse RouteNwc(const NwcRequest& request) {
    return RouteNwcInternal(request, cancel_epoch_.load(std::memory_order_relaxed));
  }
  KnwcResponse RouteKnwc(const KnwcRequest& request) {
    return RouteKnwcInternal(request, cancel_epoch_.load(std::memory_order_relaxed));
  }

  // QueryBackend interface.
  void SubmitNwcAsync(NwcRequest request, std::function<void(NwcResponse)> done) override;
  void SubmitKnwcAsync(KnwcRequest request, std::function<void(KnwcResponse)> done) override;
  void SubmitNwcAsyncTraced(
      NwcRequest request, std::function<void(NwcResponse, const AsyncTiming&)> done) override;
  void SubmitKnwcAsyncTraced(
      KnwcRequest request, std::function<void(KnwcResponse, const AsyncTiming&)> done) override;
  UpdateResponse ApplyUpdate(const MutationBatch& mutations) override;

  /// Cancels every routed request currently queued on the router executor
  /// or in flight on a shard (each completes with a Cancelled response);
  /// requests submitted afterwards run normally — the same contract as
  /// QueryService::CancelAll.
  void CancelAll();
  MetricsSnapshot SnapshotMetrics() const override;
  LatencyHistogram SnapshotLatencyHistogram() const override;
  std::vector<std::shared_ptr<const QueryTrace>> SlowTraces() const override;
  void AppendPrometheusText(std::string* out) const override;

  size_t num_shards() const { return shards_.size(); }
  bool is_dynamic() const { return config_.dynamic; }
  const ShardRouterConfig& config() const { return config_; }
  /// The global data space the partition was built over.
  const Rect& space() const { return space_; }

  /// Shard owning `p` (by Z-order key; total — every point has an owner).
  size_t OwnerShard(const Point& p) const;
  /// Owner plus every shard whose halo region contains `p`, ascending —
  /// the shards a mutation at `p` is applied to.
  std::vector<size_t> TargetShards(const Point& p) const;

  /// The conservative rect cover of shard `s`'s owned region.
  const std::vector<Rect>& shard_region(size_t s) const { return shards_[s].region; }
  /// Objects resident in shard `s`'s tree (owned + halo replicas) at build
  /// time, and the owned subset.
  size_t shard_resident_count(size_t s) const { return shards_[s].resident_count; }
  size_t shard_owned_count(size_t s) const { return shards_[s].owned_count; }
  /// Per-shard metrics (the aggregate view is SnapshotMetrics()).
  MetricsSnapshot ShardMetrics(size_t s) const { return shards_[s].service->SnapshotMetrics(); }

 private:
  struct Shard {
    uint64_t key_lo = 0;
    uint64_t key_hi = 0;
    std::vector<Rect> region;       ///< conservative cover of the owned range
    std::vector<Rect> halo_region;  ///< region rects inflated by the halo
    Rect halo_bounds;               ///< bbox of halo_region (quick reject)
    // Exactly one of session/store is set, per config_.dynamic.
    std::unique_ptr<Session> session;
    std::unique_ptr<SnapshotStore> store;
    std::unique_ptr<QueryService> service;
    size_t owned_count = 0;
    size_t resident_count = 0;
  };

  explicit ShardRouter(ShardRouterConfig config);

  /// Routed execution bound to the cancel epoch captured at submit, so
  /// CancelAll reaches requests still queued on the router executor.
  NwcResponse RouteNwcInternal(const NwcRequest& request, uint64_t cancel_epoch);
  KnwcResponse RouteKnwcInternal(const KnwcRequest& request, uint64_t cancel_epoch);

  /// True when `cancel_epoch` (captured at submit) has been overtaken by a
  /// CancelAll call.
  bool Cancelled(uint64_t cancel_epoch) const {
    return cancel_epoch_.load(std::memory_order_relaxed) != cancel_epoch;
  }

  /// True when shard `s`'s halo region contains `p`.
  bool HaloContains(const Shard& shard, const Point& p) const;

  /// Lower bound on the distance (any measure) of a group anchored at an
  /// object owned by shard `s`, for a query at `q` with window (l, w).
  double ShardLowerBound(const Shard& shard, const Point& q, double l, double w) const;

  /// Remaining deadline budget to hand a shard, given the request budget
  /// and microseconds already spent routing. Returns false when the
  /// budget is exhausted (caller answers DeadlineExceeded).
  static bool RemainingBudget(uint64_t deadline_micros, uint64_t elapsed_micros, uint64_t* out);

  ShardRouterConfig config_;
  Rect space_ = Rect::Empty();
  std::vector<uint64_t> boundaries_;  ///< num_shards + 1 ascending keys
  double halo_x_ = 0.0;
  double halo_y_ = 0.0;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> cancel_epoch_{0};
  // Declared last so routed jobs drain (and stop touching shards_) before
  // the shard services are torn down.
  ThreadPool router_pool_;
};

}  // namespace nwc

#endif  // NWC_SERVICE_SHARD_ROUTER_H_
