#include "service/thread_pool.h"

#include <utility>

namespace nwc {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_(queue_capacity) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(Job job) { return queue_.Push(std::move(job)); }

bool ThreadPool::TrySubmit(Job job) { return queue_.TryPush(std::move(job)); }

void ThreadPool::Shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.Close();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::exception_ptr ThreadPool::TakeFirstError() {
  std::lock_guard<std::mutex> lock(error_mu_);
  return std::exchange(first_error_, nullptr);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  Job job;
  while (queue_.Pop(job)) {
    try {
      job(worker_index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    jobs_executed_.fetch_add(1, std::memory_order_relaxed);
    job = nullptr;  // release captured state before blocking on the queue
  }
}

}  // namespace nwc
