#ifndef NWC_SERVICE_WORKLOAD_H_
#define NWC_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/nwc_types.h"
#include "geometry/rect.h"
#include "service/snapshot.h"

namespace nwc {

/// One parsed query of a workload: either an NWC or a kNWC query.
/// Exactly the member matching `is_knwc` is meaningful.
struct WorkloadEntry {
  bool is_knwc = false;
  NwcQuery nwc;
  KnwcQuery knwc;
};

/// Parses a workload file: one query per line — `nwc X Y L W N` or
/// `knwc X Y L W N K M` — with '#' comments and blank lines skipped.
/// Trailing junk on a line is an error (a typo'd line must not silently
/// serve a different query than the user wrote). Fails on an empty file.
///
/// Shared by `nwc_tool serve-batch` (file replay) and `nwc_load` (network
/// load generation), so the same file drives both paths.
Result<std::vector<WorkloadEntry>> LoadWorkloadFile(const std::string& path);

/// Synthesizes a deterministic skewed workload over `space`: 80% of the
/// queries aim at a hotspot covering 20% of each axis (the classic 80/20
/// rule), the rest are uniform; every eighth entry is a kNWC query. Window
/// extents are sized relative to the space so queries are selective but
/// non-trivial. The same (count, seed, space) always yields the same
/// workload.
std::vector<WorkloadEntry> MakeSkewedWorkload(size_t count, uint64_t seed, const Rect& space);

/// One step of a dynamic (mutating) workload: either a data mutation or a
/// query. Exactly the member matching `is_query` is meaningful.
struct MutationStep {
  bool is_query = false;
  Mutation mutation;    ///< when !is_query
  WorkloadEntry query;  ///< when is_query
};

/// Parameters for MakeMutationWorkload. The defaults give a 10%-churn
/// stream (the bench's headline setting) over a 1000-unit square.
struct MutationWorkloadConfig {
  size_t steps = 1000;          ///< total interleaved steps
  uint64_t seed = 1;
  Rect space{0.0, 0.0, 1000.0, 1000.0};
  /// Fraction of steps that are mutations — exactly
  /// llround(steps * churn_ratio) of them, placed pseudo-randomly.
  double churn_ratio = 0.1;
  /// Of the mutation steps, the probability each is an insert (deletes
  /// that find no live object degrade to inserts, so effective insert
  /// share can run slightly higher early on).
  double insert_fraction = 0.5;
  /// Objects seeded into `initial` before the stream starts (ids 0..n-1;
  /// stream inserts continue the id sequence).
  size_t initial_objects = 200;
  /// Probability a query step is a kNWC query.
  double knwc_fraction = 0.125;

  Status Validate() const;
};

/// A generated dynamic workload: the seed dataset plus the step stream.
/// Every delete in `steps` names an object that is genuinely live at that
/// point of the stream (the generator replays its own mutations), so a
/// faithful replayer never sees NotFound.
struct MutationWorkload {
  std::vector<DataObject> initial;
  std::vector<MutationStep> steps;
};

/// Synthesizes a deterministic interleaved insert/delete/NWC/kNWC stream.
/// The same config always yields the same workload — the tests' oracle,
/// the serve-batch replay path and the churn bench all share it. Asserts
/// on an invalid config (callers validate user input first).
MutationWorkload MakeMutationWorkload(const MutationWorkloadConfig& config);

/// Parses a mutation replay file: one mutation per line — `insert ID X Y`
/// or `delete ID X Y` — with '#' comments and blank lines skipped and a
/// line holding only `---` closing the current batch. Trailing junk on a
/// line is an error. Fails on a file with no mutations.
Result<std::vector<MutationBatch>> LoadMutationFile(const std::string& path);

/// Writes `batches` in the format LoadMutationFile parses (coordinates
/// round-trip exactly via %.17g).
Status WriteMutationFile(const std::string& path, const std::vector<MutationBatch>& batches);

}  // namespace nwc

#endif  // NWC_SERVICE_WORKLOAD_H_
