#ifndef NWC_SERVICE_WORKLOAD_H_
#define NWC_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/nwc_types.h"
#include "geometry/rect.h"

namespace nwc {

/// One parsed query of a workload: either an NWC or a kNWC query.
/// Exactly the member matching `is_knwc` is meaningful.
struct WorkloadEntry {
  bool is_knwc = false;
  NwcQuery nwc;
  KnwcQuery knwc;
};

/// Parses a workload file: one query per line — `nwc X Y L W N` or
/// `knwc X Y L W N K M` — with '#' comments and blank lines skipped.
/// Trailing junk on a line is an error (a typo'd line must not silently
/// serve a different query than the user wrote). Fails on an empty file.
///
/// Shared by `nwc_tool serve-batch` (file replay) and `nwc_load` (network
/// load generation), so the same file drives both paths.
Result<std::vector<WorkloadEntry>> LoadWorkloadFile(const std::string& path);

/// Synthesizes a deterministic skewed workload over `space`: 80% of the
/// queries aim at a hotspot covering 20% of each axis (the classic 80/20
/// rule), the rest are uniform; every eighth entry is a kNWC query. Window
/// extents are sized relative to the space so queries are selective but
/// non-trivial. The same (count, seed, space) always yields the same
/// workload.
std::vector<WorkloadEntry> MakeSkewedWorkload(size_t count, uint64_t seed, const Rect& space);

}  // namespace nwc

#endif  // NWC_SERVICE_WORKLOAD_H_
