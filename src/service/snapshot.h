#ifndef NWC_SERVICE_SNAPSHOT_H_
#define NWC_SERVICE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "service/session.h"

namespace nwc {

/// One data mutation: inserting or deleting a single object. Deletes match
/// by exact (id, position) pair, like RStarTree::Delete.
struct Mutation {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };

  Kind kind = Kind::kInsert;
  DataObject object;

  static Mutation Insert(const DataObject& object) { return Mutation{Kind::kInsert, object}; }
  static Mutation Delete(const DataObject& object) { return Mutation{Kind::kDelete, object}; }

  friend bool operator==(const Mutation& a, const Mutation& b) {
    return a.kind == b.kind && a.object == b.object;
  }
};

/// An ordered group of mutations applied (and usually published) together.
using MutationBatch = std::vector<Mutation>;

/// Epoch-based copy-on-write snapshot manager over the index stack.
///
/// The store owns a *writer* stack — a mutable R*-tree plus an
/// incrementally-maintained density grid — and a *published* immutable
/// Session readers share. Apply() mutates only the writer stack; Publish()
/// clones it (deep tree copy, grid copy with frozen prefix sums, IWP
/// rebuilt or omitted per the staleness bound below) into a fresh Session
/// and atomically swaps it in under a new epoch number. Readers that
/// Acquire()d the previous epoch keep their shared_ptr — and therefore
/// bit-exact answers for that epoch — until they drop it; the old Session
/// is destroyed when the last holder releases.
///
/// Lazy IWP rebuild: the IWP pointer tables store node ids and MBRs of the
/// exact tree they were built over, so *any* structural change invalidates
/// them — a stale IWP is wrong, not merely slow. Rather than pay the full
/// O(n) rebuild on every publish, a snapshot published while the number of
/// mutations since the last IWP build is within `iwp_staleness_limit`
/// simply carries no IWP (`session->iwp() == nullptr`); QueryService then
/// degrades use_iwp requests to the SRR+DIP+DEP path, which is bit-exact
/// for the effective scheme. Once the bound is exceeded, Publish() rebuilds
/// and the next snapshots carry a fresh IWP again. The default limit of 0
/// rebuilds on every publish (every snapshot has a fresh IWP).
///
/// ThreadSafety: Acquire()/epoch() are safe from any thread at any time.
/// Apply()/Publish()/ApplyAndPublish() are serialized internally, so
/// multiple writers do not corrupt the stack — but the store is designed
/// for the one-writer/many-readers regime the service exposes.
class SnapshotStore {
 public:
  struct Config {
    SessionConfig session;
    /// Mutations a published snapshot may be missing from its IWP before
    /// Publish() pays the rebuild. 0 = rebuild every publish.
    size_t iwp_staleness_limit = 0;

    Status Validate() const { return session.Validate(); }
  };

  /// A pinned view: the Session plus the epoch it was published under.
  /// Holding the shared_ptr keeps the whole epoch alive; the epoch number
  /// keys the result cache so answers never migrate across publishes.
  struct SnapshotRef {
    std::shared_ptr<const Session> session;
    uint64_t epoch = 0;
  };

  /// Per-batch application outcome (counts, not statuses).
  struct ApplyStats {
    size_t inserts = 0;
    size_t deletes = 0;
    size_t delete_misses = 0;  ///< deletes whose (id, position) was absent
  };

  /// Adopts `tree` as the writer stack, builds the configured auxiliary
  /// structures, and publishes epoch 1. The grid's data space is fixed at
  /// open time (config or tree bounds); later inserts outside it clamp to
  /// the boundary cells, which keeps the DEP bound sound (every object is
  /// in some cell) at some pruning-precision cost.
  static Result<std::unique_ptr<SnapshotStore>> Open(RStarTree tree, const Config& config);

  /// The currently-published snapshot. Never null after Open().
  SnapshotRef Acquire() const;

  /// Epoch of the currently-published snapshot (starts at 1).
  uint64_t epoch() const;

  /// Applies `batch` in order to the writer stack only — readers see
  /// nothing until Publish(). Inserts always succeed; a delete whose exact
  /// (id, position) is absent is skipped and counted in
  /// `stats->delete_misses`. Returns NotFound if any delete missed (the
  /// rest of the batch is still applied), Ok otherwise.
  Status Apply(const MutationBatch& batch, ApplyStats* stats = nullptr);

  /// Publishes the writer stack as a new immutable Session under the next
  /// epoch and returns a ref to it. When nothing was applied since the
  /// last publish, returns the current snapshot without cloning.
  SnapshotRef Publish();

  /// Apply() + Publish() under one writer-lock acquisition — the typed
  /// update API's path. `stats` and `out` may be null.
  Status ApplyAndPublish(const MutationBatch& batch, ApplyStats* stats, SnapshotRef* out);

  /// Number of objects in the *writer* stack (>= published when unflushed
  /// inserts exist, etc.).
  size_t writer_object_count() const;

  /// Mutations applied since the last IWP build (test/monitoring hook).
  size_t mutations_since_iwp_build() const;

  /// True when the store is *configured* to serve this scheme. Unlike
  /// Session::Supports this is epoch-independent: with build_iwp on, a
  /// use_iwp request is supported even against a snapshot currently inside
  /// the staleness bound (the service degrades it for that query).
  bool Supports(const NwcOptions& options) const {
    return (!options.use_iwp || config_.session.build_iwp) &&
           (!options.use_dep || config_.session.build_grid);
  }

  const Config& config() const { return config_; }

 private:
  explicit SnapshotStore(const Config& config) : config_(config) {}

  Status ApplyLocked(const MutationBatch& batch, ApplyStats* stats);
  SnapshotRef PublishLocked();

  Config config_;

  /// Serializes writers (Apply/Publish). Never held while executing
  /// queries; readers don't touch it.
  mutable std::mutex writer_mu_;
  std::unique_ptr<RStarTree> writer_tree_;
  std::unique_ptr<DensityGrid> writer_grid_;  ///< null when !build_grid
  size_t unpublished_mutations_ = 0;
  size_t mutations_since_iwp_build_ = 0;

  /// Guards the published (session, epoch) pair; held only for the swap in
  /// Publish() and the copy in Acquire().
  mutable std::mutex publish_mu_;
  std::shared_ptr<const Session> published_;
  uint64_t epoch_ = 0;
};

}  // namespace nwc

#endif  // NWC_SERVICE_SNAPSHOT_H_
