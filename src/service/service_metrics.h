#ifndef NWC_SERVICE_SERVICE_METRICS_H_
#define NWC_SERVICE_SERVICE_METRICS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/io_stats.h"
#include "common/status.h"
#include "service/latency_histogram.h"

namespace nwc {

/// Point-in-time copy of a ServiceMetrics, safe to read without locks.
struct MetricsSnapshot {
  uint64_t queries = 0;       ///< completed queries (ok or failed)
  uint64_t failures = 0;      ///< queries that returned a non-OK status
  uint64_t not_found = 0;     ///< OK queries with no qualified window / 0 groups
  uint64_t rejections = 0;    ///< TrySubmit calls bounced by the full queue
  uint64_t slow_queries = 0;  ///< queries at/over the slow-trace threshold
  /// Failure breakdown by cause (each failed query increments exactly one
  /// of these, or none for other codes; cancelled + deadline_exceeded +
  /// io_errors <= failures always holds).
  uint64_t cancelled = 0;          ///< queries stopped by CancelAll
  uint64_t deadline_exceeded = 0;  ///< queries stopped by their deadline
  uint64_t io_errors = 0;          ///< queries failed by (injected) I/O faults
  /// Queries shed at submit time because the queue was past the
  /// shed watermark (like rejections, these never ran).
  uint64_t shed = 0;
  /// Transient-fault retry attempts (each retried execution adds one; the
  /// query itself still counts once in `queries`).
  uint64_t retries = 0;
  /// High-water mark, observed both when a request enters the queue and
  /// when a worker dequeues it (so bursts that arrive while every submit
  /// blocks still register).
  uint64_t max_queue_depth = 0;

  /// Wall-clock seconds covered by this snapshot (since construction or
  /// the last Reset).
  double wall_seconds = 0.0;

  uint64_t latency_p50_us = 0;
  uint64_t latency_p95_us = 0;
  uint64_t latency_p99_us = 0;
  uint64_t latency_min_us = 0;
  uint64_t latency_max_us = 0;
  double latency_mean_us = 0.0;

  /// Per-phase I/O totals merged from every completed query's IoCounter.
  uint64_t traversal_reads = 0;
  uint64_t window_query_reads = 0;
  uint64_t cache_hits = 0;

  /// Result-cache roll-up (all zero when the service runs uncached).
  /// hits/misses/evictions are monotonic counters; entries/bytes are
  /// point-in-time gauges.
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t result_cache_evictions = 0;
  uint64_t result_cache_entries = 0;
  uint64_t result_cache_bytes = 0;
  /// Window queries answered from a batch's window-query memo.
  uint64_t window_memo_hits = 0;

  uint64_t total_reads() const { return traversal_reads + window_query_reads; }

  /// Queries that completed with an OK status.
  uint64_t ok() const { return queries - failures; }

  /// Wall-clock throughput over the snapshot window. Guarded: a snapshot
  /// taken with no elapsed time (hand-built, or taken immediately after
  /// Reset on a coarse clock) reports 0 instead of inf, and a non-finite
  /// or negative wall_seconds also yields 0 rather than NaN — the ordered
  /// comparison is false for NaN, so every emitter (ToString, ToJson,
  /// Prometheus) prints a plain 0.
  double Qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(queries) / wall_seconds : 0.0;
  }

  /// Multi-line human-readable report (the serve-batch output).
  std::string ToString() const;

  /// One-object JSON rendering of every field plus the derived QPS — the
  /// machine-readable counterpart of ToString() (serve-batch
  /// --metrics-json).
  std::string ToJson() const;
};

/// Aggregated observability for a QueryService: a latency histogram with
/// p50/p95/p99, per-phase I/O roll-ups merged from the per-query
/// IoCounters, queue-depth high-water mark, and rejection counts.
///
/// ThreadSafety: all members are safe to call concurrently; state is
/// guarded by one mutex. Workers touch it once per completed query, so
/// contention is negligible next to query cost.
class ServiceMetrics {
 public:
  ServiceMetrics() = default;

  /// Records one completed query: its wall latency, its per-query I/O
  /// counter (merged into the roll-up), and its outcome. `code` is the
  /// final status code (after any retries); kCancelled /
  /// kDeadlineExceeded / kIoError additionally bump the per-cause
  /// breakdown. `found` is whether a result was produced (ignored for
  /// non-OK codes).
  void RecordQuery(uint64_t latency_micros, const IoCounter& io, StatusCode code, bool found);

  /// Records one TrySubmit rejection (queue full).
  void RecordRejection();

  /// Records `count` requests shed at submit time (queue past the
  /// watermark). The count matters on the batch path, where one shed group
  /// job carries many requests — shed accounting is per request, not per
  /// job, so `nwc_requests_shed_total` stays comparable across submit APIs.
  void RecordShed(uint64_t count = 1);

  /// Records one transient-fault retry attempt.
  void RecordRetry();

  /// Records an observed queue depth; keeps the high-water mark. Called at
  /// submit time *and* at dequeue time: sampling only at submit
  /// under-reports bursts, because the submitters that would observe the
  /// peak are exactly the ones blocked on the full queue.
  void RecordQueueDepth(size_t depth);

  /// Records one query retained by the slow-trace machinery.
  void RecordSlowQuery();

  /// Adds window-query memo hits observed by one finished batch group.
  void RecordWindowMemoHits(uint64_t hits);

  /// Consistent point-in-time copy of everything above.
  MetricsSnapshot Snapshot() const;

  /// Copy of the raw latency histogram (for bucket-level exporters).
  LatencyHistogram LatencySnapshot() const;

  /// Zeroes every counter and the histogram; restarts the wall clock.
  void Reset();

 private:
  mutable std::mutex mu_;
  LatencyHistogram latency_;
  IoCounter io_;
  uint64_t queries_ = 0;
  uint64_t failures_ = 0;
  uint64_t not_found_ = 0;
  uint64_t rejections_ = 0;
  uint64_t slow_queries_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t io_errors_ = 0;
  uint64_t shed_ = 0;
  uint64_t retries_ = 0;
  uint64_t max_queue_depth_ = 0;
  uint64_t window_memo_hits_ = 0;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace nwc

#endif  // NWC_SERVICE_SERVICE_METRICS_H_
