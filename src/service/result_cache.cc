#include "service/result_cache.h"

#include <utility>
#include <vector>

#include "common/float_bits.h"

namespace nwc {
namespace {

uint8_t PackScheme(const NwcOptions& options) {
  return static_cast<uint8_t>((options.use_srr ? 1u : 0u) | (options.use_dip ? 2u : 0u) |
                              (options.use_dep ? 4u : 0u) | (options.use_iwp ? 8u : 0u));
}

}  // namespace

ResultCacheKey ResultCacheKey::ForNwc(const NwcQuery& query, const NwcOptions& options,
                                      uint64_t data_epoch) {
  ResultCacheKey key;
  key.kind = 0;
  key.scheme = PackScheme(options);
  key.measure = static_cast<uint8_t>(options.measure);
  // Keys store the *canonical* bits (-0.0 folded onto +0.0), so both the
  // field-wise operator== and Hash() see one representation per numeric
  // value — the same hash/equality contract WindowQueryMemo maintains.
  key.qx_bits = CanonicalDoubleBits(query.q.x);
  key.qy_bits = CanonicalDoubleBits(query.q.y);
  key.l_bits = CanonicalDoubleBits(query.length);
  key.w_bits = CanonicalDoubleBits(query.width);
  key.n = query.n;
  key.data_epoch = data_epoch;
  return key;
}

ResultCacheKey ResultCacheKey::ForKnwc(const KnwcQuery& query, const NwcOptions& options,
                                       uint64_t data_epoch) {
  ResultCacheKey key = ForNwc(query.base, options, data_epoch);
  key.kind = 1;
  key.k = query.k;
  key.m = query.m;
  return key;
}

uint64_t ResultCacheKey::Hash() const {
  // FNV-1a, mixed a field at a time.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xFFu;
      hash *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(kind) | (static_cast<uint64_t>(scheme) << 8) |
      (static_cast<uint64_t>(measure) << 16));
  mix(qx_bits);
  mix(qy_bits);
  mix(l_bits);
  mix(w_bits);
  mix(n);
  mix(k);
  mix(m);
  mix(data_epoch);
  return hash;
}

namespace {

size_t NwcResultBytes(const NwcResult& result) {
  return result.objects.capacity() * sizeof(DataObject);
}

size_t KnwcResultBytes(const KnwcResult& result) {
  size_t bytes = result.groups.capacity() * sizeof(NwcGroup);
  for (const auto& group : result.groups) {
    bytes += group.objects.capacity() * sizeof(DataObject);
  }
  return bytes;
}

}  // namespace

ResultCache::ResultCache(size_t capacity_bytes, size_t shards)
    : capacity_bytes_(capacity_bytes) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_bytes_ = capacity_bytes_ / shards_.size();
}

template <typename Fill>
bool ResultCache::LookupImpl(const ResultCacheKey& key, const Fill& fill) {
  const uint64_t generation = generation_.load(std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  if (it->second->generation != generation) {
    // Stale entry from before the last Invalidate(): erase lazily.
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  fill(*it->second);
  return true;
}

bool ResultCache::LookupNwc(const NwcQuery& query, const NwcOptions& options, NwcResult* out,
                            uint64_t data_epoch) {
  const ResultCacheKey key = ResultCacheKey::ForNwc(query, options, data_epoch);
  return LookupImpl(key, [out](const Entry& entry) { *out = entry.nwc; });
}

bool ResultCache::LookupKnwc(const KnwcQuery& query, const NwcOptions& options, KnwcResult* out,
                             uint64_t data_epoch) {
  const ResultCacheKey key = ResultCacheKey::ForKnwc(query, options, data_epoch);
  return LookupImpl(key, [out](const Entry& entry) { *out = entry.knwc; });
}

void ResultCache::InsertImpl(const ResultCacheKey& key, Entry entry) {
  if (entry.bytes > shard_capacity_bytes_) return;  // would evict a whole shard
  entry.key = key;
  entry.generation = generation_.load(std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.bytes += entry.bytes;
  shard.lru.push_front(std::move(entry));
  shard.index[key] = shard.lru.begin();
  ++shard.insertions;
  while (shard.bytes > shard_capacity_bytes_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::InsertNwc(const NwcQuery& query, const NwcOptions& options,
                            const NwcResult& result, uint64_t data_epoch) {
  Entry entry;
  entry.is_knwc = false;
  entry.nwc = result;
  entry.bytes = sizeof(Entry) + NwcResultBytes(entry.nwc);
  InsertImpl(ResultCacheKey::ForNwc(query, options, data_epoch), std::move(entry));
}

void ResultCache::InsertKnwc(const KnwcQuery& query, const NwcOptions& options,
                             const KnwcResult& result, uint64_t data_epoch) {
  Entry entry;
  entry.is_knwc = true;
  entry.knwc = result;
  entry.bytes = sizeof(Entry) + KnwcResultBytes(entry.knwc);
  InsertImpl(ResultCacheKey::ForKnwc(query, options, data_epoch), std::move(entry));
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

void ResultCache::ResetStats() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->hits = 0;
    shard->misses = 0;
    shard->insertions = 0;
    shard->evictions = 0;
  }
}

}  // namespace nwc
