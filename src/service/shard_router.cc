#include "service/shard_router.h"

#include <algorithm>
#include <future>
#include <limits>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "service/batch_planner.h"

namespace nwc {
namespace {

// Extension applied to region rects that touch the Z-order grid boundary:
// out-of-space points clamp into boundary cells, so the boundary cells
// geometrically own an unbounded slab. Large but far from overflow when
// inflated by window- or halo-sized amounts.
constexpr double kUnboundedSide = 1e300;

// Inverse of batch_planner's SpreadBits16: gathers the even bits of `v`
// into the low 16 bits.
uint64_t CompactBits16(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return v;
}

// Data-space interval covered by grid cells [g_lo, g_hi) on one axis.
// GridCoord maps v -> floor(clamp01((v - lo) / extent) * 65535), so cell g
// covers [lo + g/65535 * extent, lo + (g+1)/65535 * extent]; cell 0 also
// absorbs everything below the space and cell 65535 everything above (and a
// degenerate axis maps every value to cell 0).
void CellSpan(uint64_t g_lo, uint64_t g_hi, double lo, double hi, double* out_lo,
              double* out_hi) {
  const double extent = hi - lo;
  if (!(extent > 0.0)) {  // degenerate axis: every value lands in cell 0
    *out_lo = -kUnboundedSide;
    *out_hi = g_lo == 0 ? kUnboundedSide : -kUnboundedSide;
    return;
  }
  *out_lo = g_lo == 0 ? -kUnboundedSide : lo + extent * static_cast<double>(g_lo) / 65535.0;
  *out_hi = g_hi >= 65536 ? kUnboundedSide : lo + extent * static_cast<double>(g_hi) / 65535.0;
}

struct MortonBlock {
  uint64_t start = 0;  // first key of the block
  int level = 0;       // 0 = whole key space; 16 = single cell
};

void DecomposeRange(uint64_t block_start, int level, uint64_t key_lo, uint64_t key_hi,
                    std::vector<MortonBlock>* out) {
  const uint64_t span = 1ull << (2 * (16 - level));
  const uint64_t block_end = block_start + span;
  if (block_end <= key_lo || block_start >= key_hi) return;
  if (key_lo <= block_start && block_end <= key_hi) {
    out->push_back(MortonBlock{block_start, level});
    return;
  }
  const uint64_t child_span = span / 4;
  for (int c = 0; c < 4; ++c) {
    DecomposeRange(block_start + child_span * static_cast<uint64_t>(c), level + 1, key_lo,
                   key_hi, out);
  }
}

// Member ids of a group, sorted — the canonical form used for tie-breaks
// and overlap counting (groups are multisets, so ids may repeat).
std::vector<ObjectId> SortedIds(const std::vector<DataObject>& objects) {
  std::vector<ObjectId> ids;
  ids.reserve(objects.size());
  for (const DataObject& o : objects) ids.push_back(o.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Multiset intersection size of two sorted id vectors.
size_t OverlapCount(const std::vector<ObjectId>& a, const std::vector<ObjectId>& b) {
  size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

void PromCounter(std::string* out, const char* name, const char* help) {
  *out += StrFormat("# HELP %s %s\n# TYPE %s counter\n", name, help, name);
}

void PromGauge(std::string* out, const char* name, const char* help) {
  *out += StrFormat("# HELP %s %s\n# TYPE %s gauge\n", name, help, name);
}

void PromSeries(std::string* out, const char* name, size_t shard, uint64_t value) {
  *out += StrFormat("%s{shard=\"%zu\"} %llu\n", name, shard,
                    static_cast<unsigned long long>(value));
}

}  // namespace

Status ShardRouterConfig::Validate() const {
  if (num_shards == 0) return Status::InvalidArgument("num_shards must be >= 1");
  if (num_shards > 1) {
    if (!(max_window_length > 0.0) || !(max_window_width > 0.0)) {
      return Status::InvalidArgument(
          "sharded serving requires positive max_window_length/max_window_width (the halo "
          "basis)");
    }
    if (!(halo_factor >= 1.0)) {
      return Status::InvalidArgument("halo_factor must be >= 1 for exact single-group answers");
    }
  }
  if (fault_shard >= 0 && static_cast<size_t>(fault_shard) >= num_shards) {
    return Status::InvalidArgument("fault_shard out of range");
  }
  if (router_threads == 0) return Status::InvalidArgument("router_threads must be >= 1");
  if (router_queue_capacity == 0) {
    return Status::InvalidArgument("router_queue_capacity must be >= 1");
  }
  Status status = service.Validate();
  if (!status.ok()) return status;
  status = session.Validate();
  if (!status.ok()) return status;
  return tree.Validate();
}

std::vector<Rect> ZOrderRangeRegion(uint64_t key_lo, uint64_t key_hi, const Rect& space) {
  std::vector<Rect> region;
  if (key_lo >= key_hi) return region;
  key_hi = std::min(key_hi, kZOrderKeyEnd);
  std::vector<MortonBlock> blocks;
  DecomposeRange(0, 0, key_lo, key_hi, &blocks);
  region.reserve(blocks.size());
  for (const MortonBlock& block : blocks) {
    const uint64_t cell_span = 1ull << (16 - block.level);
    const uint64_t gx = CompactBits16(block.start);
    const uint64_t gy = CompactBits16(block.start >> 1);
    Rect r;
    CellSpan(gx, gx + cell_span, space.min_x, space.max_x, &r.min_x, &r.max_x);
    CellSpan(gy, gy + cell_span, space.min_y, space.max_y, &r.min_y, &r.max_y);
    region.push_back(r);
  }
  return region;
}

std::vector<uint64_t> EqualCountKeyBoundaries(std::vector<uint64_t> keys, size_t num_shards) {
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> boundaries(num_shards + 1);
  boundaries[0] = 0;
  boundaries[num_shards] = kZOrderKeyEnd;
  for (size_t s = 1; s < num_shards; ++s) {
    uint64_t candidate;
    if (keys.empty()) {
      candidate = kZOrderKeyEnd / num_shards * s;  // uniform fallback
    } else {
      candidate = keys[keys.size() * s / num_shards];
    }
    // Keep the sequence strictly increasing even with heavy duplicates
    // (later shards then own empty or near-empty ranges).
    candidate = std::max(candidate, boundaries[s - 1] + 1);
    candidate = std::min(candidate, kZOrderKeyEnd - (num_shards - s));
    boundaries[s] = candidate;
  }
  return boundaries;
}

ShardRouter::ShardRouter(ShardRouterConfig config)
    : config_(std::move(config)),
      router_pool_(config_.router_threads, config_.router_queue_capacity) {}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(std::vector<DataObject> objects,
                                                       const ShardRouterConfig& config) {
  Status status = config.Validate();
  if (!status.ok()) return status;

  std::unique_ptr<ShardRouter> router(new ShardRouter(config));

  Rect space = Rect::Empty();
  for (const DataObject& object : objects) space.Expand(object.pos);
  router->space_ = space;

  const size_t num_shards = config.num_shards;
  router->halo_x_ = num_shards > 1 ? config.halo_factor * config.max_window_length : 0.0;
  router->halo_y_ = num_shards > 1 ? config.halo_factor * config.max_window_width : 0.0;

  std::vector<uint64_t> keys;
  keys.reserve(objects.size());
  for (const DataObject& object : objects) keys.push_back(ZOrderKey(object.pos, space));
  router->boundaries_ = EqualCountKeyBoundaries(keys, num_shards);

  router->shards_.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard& shard = router->shards_[s];
    shard.key_lo = router->boundaries_[s];
    shard.key_hi = router->boundaries_[s + 1];
    shard.region = ZOrderRangeRegion(shard.key_lo, shard.key_hi, space);
    shard.halo_bounds = Rect::Empty();
    shard.halo_region.reserve(shard.region.size());
    for (const Rect& r : shard.region) {
      const Rect inflated = r.Inflated(router->halo_x_, router->halo_y_);
      shard.halo_region.push_back(inflated);
      shard.halo_bounds.Expand(inflated);
    }
  }

  // Membership: every object goes to its owner's tree, plus the tree of
  // every shard whose halo contains it.
  std::vector<std::vector<DataObject>> members(num_shards);
  for (size_t i = 0; i < objects.size(); ++i) {
    const size_t owner = router->OwnerShard(objects[i].pos);
    members[owner].push_back(objects[i]);
    router->shards_[owner].owned_count++;
    for (size_t s = 0; s < num_shards; ++s) {
      if (s == owner) continue;
      if (router->HaloContains(router->shards_[s], objects[i].pos)) {
        members[s].push_back(objects[i]);
      }
    }
  }

  for (size_t s = 0; s < num_shards; ++s) {
    Shard& shard = router->shards_[s];
    shard.resident_count = members[s].size();

    RStarTree tree(config.tree);
    for (const DataObject& object : members[s]) tree.Insert(object);

    SessionConfig session_config = config.session;
    // One grid geometry across shards: the global space, not the shard's
    // own (halo-widened) bounds.
    if (session_config.grid_space.IsEmpty() && !space.IsEmpty()) {
      session_config.grid_space = space;
    }

    ServiceConfig service_config = config.service;
    service_config.fault_plan =
        (config.fault_shard < 0 || static_cast<size_t>(config.fault_shard) == s)
            ? config.fault_plan
            : FaultPlan::None();

    if (config.dynamic) {
      SnapshotStore::Config store_config;
      store_config.session = session_config;
      store_config.iwp_staleness_limit = config.iwp_staleness_limit;
      auto store = SnapshotStore::Open(std::move(tree), store_config);
      if (!store.ok()) return store.status();
      shard.store = std::move(store).value();
      shard.service = std::make_unique<QueryService>(*shard.store, service_config);
    } else {
      auto session = Session::Open(std::move(tree), session_config);
      if (!session.ok()) return session.status();
      shard.session = std::make_unique<Session>(std::move(session).value());
      shard.service = std::make_unique<QueryService>(*shard.session, service_config);
    }
  }

  return router;
}

ShardRouter::~ShardRouter() = default;

size_t ShardRouter::OwnerShard(const Point& p) const {
  const uint64_t key = ZOrderKey(p, space_);
  // boundaries_ is strictly increasing with front() == 0, so the owner is
  // the last boundary <= key.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), key);
  return static_cast<size_t>(it - boundaries_.begin()) - 1;
}

bool ShardRouter::HaloContains(const Shard& shard, const Point& p) const {
  if (!shard.halo_bounds.Contains(p)) return false;
  for (const Rect& r : shard.halo_region) {
    if (r.Contains(p)) return true;
  }
  return false;
}

std::vector<size_t> ShardRouter::TargetShards(const Point& p) const {
  const size_t owner = OwnerShard(p);
  std::vector<size_t> targets;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (s == owner || HaloContains(shards_[s], p)) targets.push_back(s);
  }
  return targets;
}

double ShardRouter::ShardLowerBound(const Shard& shard, const Point& q, double l,
                                    double w) const {
  double lb = std::numeric_limits<double>::infinity();
  for (const Rect& r : shard.region) {
    lb = std::min(lb, MinDist(q, r.Inflated(l, w)));
  }
  return lb;
}

bool ShardRouter::RemainingBudget(uint64_t deadline_micros, uint64_t elapsed_micros,
                                  uint64_t* out) {
  if (deadline_micros == 0) {
    *out = 0;  // no request deadline; shard services apply their default
    return true;
  }
  if (elapsed_micros >= deadline_micros) return false;
  *out = deadline_micros - elapsed_micros;
  return true;
}

NwcResponse ShardRouter::RouteNwcInternal(const NwcRequest& request, uint64_t cancel_epoch) {
  Stopwatch timer;
  NwcResponse best;
  best.status = Status::Ok();

  if (Cancelled(cancel_epoch)) {
    best.status = Status::Cancelled("request cancelled");
    return best;
  }
  if (shards_.size() > 1 && (request.query.length > config_.max_window_length ||
                             request.query.width > config_.max_window_width)) {
    best.status = Status::FailedPrecondition(
        "window exceeds the sharded serving bound (max_window_length/width): halo "
        "replication does not cover it");
    best.latency_micros = timer.ElapsedMicros();
    return best;
  }

  // Visit shards ascending by their lower bound; stop once the bound
  // exceeds the best distance in hand.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    order.emplace_back(
        ShardLowerBound(shards_[s], request.query.q, request.query.length, request.query.width),
        s);
  }
  std::sort(order.begin(), order.end());

  bool have_answer = false;
  bool any_failure = false;
  Status last_failure;
  std::vector<ObjectId> best_ids;
  size_t queried = 0;
  size_t cache_hits = 0;

  for (const auto& [lb, s] : order) {
    if (have_answer && best.result.found && lb > best.result.distance) break;
    if (Cancelled(cancel_epoch)) {
      best.status = Status::Cancelled("request cancelled");
      best.result = NwcResult{};
      best.latency_micros = timer.ElapsedMicros();
      return best;
    }

    uint64_t budget = 0;
    if (!RemainingBudget(request.deadline_micros, timer.ElapsedMicros(), &budget)) {
      best.status = Status::DeadlineExceeded("routed query ran out of deadline budget");
      best.result = NwcResult{};
      best.latency_micros = timer.ElapsedMicros();
      return best;
    }

    NwcRequest shard_request = request;
    shard_request.deadline_micros = budget;
    NwcResponse response = shards_[s].service->SubmitNwc(std::move(shard_request)).get();
    ++queried;

    if (!response.status.ok()) {
      if (config_.partial_failure == PartialFailurePolicy::kFail) {
        response.latency_micros = timer.ElapsedMicros();
        return response;
      }
      any_failure = true;
      last_failure = response.status;
      continue;
    }

    best.traversal_reads += response.traversal_reads;
    best.window_query_reads += response.window_query_reads;
    best.cache_hits += response.cache_hits;
    if (response.result_cache_hit) ++cache_hits;

    if (response.result.found) {
      std::vector<ObjectId> ids = SortedIds(response.result.objects);
      const bool better =
          !have_answer || !best.result.found ||
          response.result.distance < best.result.distance ||
          (response.result.distance == best.result.distance && ids < best_ids);
      if (better) {
        best.result = std::move(response.result);
        best_ids = std::move(ids);
      }
    }
    have_answer = true;
  }

  if (!have_answer) {
    if (any_failure) {
      best.status = last_failure;
      best.degraded = true;
    }
    // No failure and nothing found: a clean not-found answer.
  } else if (any_failure) {
    best.degraded = true;
  }
  best.result_cache_hit = queried > 0 && cache_hits == queried;
  best.latency_micros = timer.ElapsedMicros();
  return best;
}

KnwcResponse ShardRouter::RouteKnwcInternal(const KnwcRequest& request, uint64_t cancel_epoch) {
  Stopwatch timer;
  KnwcResponse merged;
  merged.status = Status::Ok();

  if (Cancelled(cancel_epoch)) {
    merged.status = Status::Cancelled("request cancelled");
    return merged;
  }
  if (shards_.size() > 1 && (request.query.base.length > config_.max_window_length ||
                             request.query.base.width > config_.max_window_width)) {
    merged.status = Status::FailedPrecondition(
        "window exceeds the sharded serving bound (max_window_length/width): halo "
        "replication does not cover it");
    merged.latency_micros = timer.ElapsedMicros();
    return merged;
  }

  uint64_t budget = 0;
  if (!RemainingBudget(request.deadline_micros, timer.ElapsedMicros(), &budget)) {
    merged.status = Status::DeadlineExceeded("routed query ran out of deadline budget");
    merged.latency_micros = timer.ElapsedMicros();
    return merged;
  }

  // Scatter to every shard with the caller's (k, m); gather, then re-run
  // the greedy selection over the merged candidates.
  std::vector<std::future<KnwcResponse>> futures;
  futures.reserve(shards_.size());
  for (Shard& shard : shards_) {
    KnwcRequest shard_request = request;
    shard_request.deadline_micros = budget;
    futures.push_back(shard.service->SubmitKnwc(std::move(shard_request)));
  }

  struct Candidate {
    NwcGroup group;
    std::vector<ObjectId> ids;
  };
  std::vector<Candidate> candidates;
  bool any_failure = false;
  bool any_ok = false;
  Status last_failure;
  size_t cache_hits = 0;
  size_t queried = 0;
  Status fail_fast;  // first failure under the kFail policy

  for (std::future<KnwcResponse>& future : futures) {
    KnwcResponse response = future.get();
    ++queried;
    if (!response.status.ok()) {
      any_failure = true;
      last_failure = response.status;
      if (config_.partial_failure == PartialFailurePolicy::kFail && fail_fast.ok()) {
        fail_fast = response.status;
      }
      continue;
    }
    any_ok = true;
    merged.traversal_reads += response.traversal_reads;
    merged.window_query_reads += response.window_query_reads;
    merged.cache_hits += response.cache_hits;
    if (response.result_cache_hit) ++cache_hits;
    for (NwcGroup& group : response.result.groups) {
      Candidate candidate;
      candidate.ids = SortedIds(group.objects);
      candidate.group = std::move(group);
      candidates.push_back(std::move(candidate));
    }
  }

  if (!fail_fast.ok()) {
    merged.status = fail_fast;
    merged.result = KnwcResult{};
    merged.latency_micros = timer.ElapsedMicros();
    return merged;
  }
  if (!any_ok) {
    if (any_failure) {
      merged.status = last_failure;
      merged.degraded = true;
    }
    merged.latency_micros = timer.ElapsedMicros();
    return merged;
  }

  // Greedy selection ascending by (distance, member ids): identical
  // cross-shard duplicates self-eliminate (a group overlaps itself in n
  // members, and Validate guarantees m < n).
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.group.distance != b.group.distance) return a.group.distance < b.group.distance;
    return a.ids < b.ids;
  });
  std::vector<const Candidate*> selected;
  for (const Candidate& candidate : candidates) {
    bool compatible = true;
    for (const Candidate* chosen : selected) {
      if (OverlapCount(candidate.ids, chosen->ids) > request.query.m) {
        compatible = false;
        break;
      }
    }
    if (compatible) selected.push_back(&candidate);
    if (selected.size() == request.query.k) break;
  }
  merged.result.groups.reserve(selected.size());
  for (const Candidate* chosen : selected) merged.result.groups.push_back(chosen->group);

  merged.degraded = any_failure;
  merged.result_cache_hit = queried > 0 && cache_hits == queried;
  merged.latency_micros = timer.ElapsedMicros();
  return merged;
}

void ShardRouter::SubmitNwcAsync(NwcRequest request, std::function<void(NwcResponse)> done) {
  auto shared_done = std::make_shared<std::function<void(NwcResponse)>>(std::move(done));
  const uint64_t epoch = cancel_epoch_.load(std::memory_order_relaxed);
  const bool accepted =
      router_pool_.Submit([this, request = std::move(request), shared_done, epoch](size_t) {
        (*shared_done)(RouteNwcInternal(request, epoch));
      });
  if (!accepted) {
    NwcResponse response;
    response.status = Status::FailedPrecondition("router is shut down");
    (*shared_done)(std::move(response));
  }
}

void ShardRouter::SubmitKnwcAsync(KnwcRequest request, std::function<void(KnwcResponse)> done) {
  auto shared_done = std::make_shared<std::function<void(KnwcResponse)>>(std::move(done));
  const uint64_t epoch = cancel_epoch_.load(std::memory_order_relaxed);
  const bool accepted =
      router_pool_.Submit([this, request = std::move(request), shared_done, epoch](size_t) {
        (*shared_done)(RouteKnwcInternal(request, epoch));
      });
  if (!accepted) {
    KnwcResponse response;
    response.status = Status::FailedPrecondition("router is shut down");
    (*shared_done)(std::move(response));
  }
}

void ShardRouter::SubmitNwcAsyncTraced(
    NwcRequest request, std::function<void(NwcResponse, const AsyncTiming&)> done) {
  const uint64_t enqueue_us = SteadyNowMicros();
  auto shared_done =
      std::make_shared<std::function<void(NwcResponse, const AsyncTiming&)>>(std::move(done));
  const uint64_t epoch = cancel_epoch_.load(std::memory_order_relaxed);
  const bool accepted = router_pool_.Submit(
      [this, request = std::move(request), shared_done, enqueue_us, epoch](size_t) {
        AsyncTiming timing;
        timing.enqueue_us = enqueue_us;
        timing.dequeue_us = SteadyNowMicros();
        NwcResponse response = RouteNwcInternal(request, epoch);
        timing.finish_us = SteadyNowMicros();
        (*shared_done)(std::move(response), timing);
      });
  if (!accepted) {
    NwcResponse response;
    response.status = Status::FailedPrecondition("router is shut down");
    const uint64_t now = SteadyNowMicros();
    (*shared_done)(std::move(response), AsyncTiming{now, now, now});
  }
}

void ShardRouter::SubmitKnwcAsyncTraced(
    KnwcRequest request, std::function<void(KnwcResponse, const AsyncTiming&)> done) {
  const uint64_t enqueue_us = SteadyNowMicros();
  auto shared_done =
      std::make_shared<std::function<void(KnwcResponse, const AsyncTiming&)>>(std::move(done));
  const uint64_t epoch = cancel_epoch_.load(std::memory_order_relaxed);
  const bool accepted = router_pool_.Submit(
      [this, request = std::move(request), shared_done, enqueue_us, epoch](size_t) {
        AsyncTiming timing;
        timing.enqueue_us = enqueue_us;
        timing.dequeue_us = SteadyNowMicros();
        KnwcResponse response = RouteKnwcInternal(request, epoch);
        timing.finish_us = SteadyNowMicros();
        (*shared_done)(std::move(response), timing);
      });
  if (!accepted) {
    KnwcResponse response;
    response.status = Status::FailedPrecondition("router is shut down");
    const uint64_t now = SteadyNowMicros();
    (*shared_done)(std::move(response), AsyncTiming{now, now, now});
  }
}

void ShardRouter::CancelAll() {
  cancel_epoch_.fetch_add(1, std::memory_order_relaxed);
  for (Shard& shard : shards_) shard.service->CancelAll();
}

UpdateResponse ShardRouter::ApplyUpdate(const MutationBatch& mutations) {
  UpdateResponse response;
  Stopwatch timer;
  if (!config_.dynamic) {
    response.status =
        Status::FailedPrecondition("service is static: updates require a SnapshotStore");
    return response;
  }

  // Split the batch: owned mutations carry the authoritative counts;
  // replica mutations keep halo copies in lockstep (same deterministic
  // target rule for inserts and deletes, so replicas never drift).
  std::vector<MutationBatch> owned(shards_.size());
  std::vector<MutationBatch> replicas(shards_.size());
  for (const Mutation& mutation : mutations) {
    const size_t owner = OwnerShard(mutation.object.pos);
    owned[owner].push_back(mutation);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s == owner) continue;
      if (HaloContains(shards_[s], mutation.object.pos)) replicas[s].push_back(mutation);
    }
  }

  response.status = Status::Ok();
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!owned[s].empty()) {
      const UpdateResponse shard_response = shards_[s].service->ApplyUpdate(owned[s]);
      response.applied_inserts += shard_response.applied_inserts;
      response.applied_deletes += shard_response.applied_deletes;
      response.delete_misses += shard_response.delete_misses;
      response.epoch = std::max(response.epoch, shard_response.epoch);
      if (!shard_response.status.ok() &&
          shard_response.status.code() != StatusCode::kNotFound) {
        response.status = shard_response.status;
      }
    }
    if (!replicas[s].empty()) {
      const UpdateResponse shard_response = shards_[s].service->ApplyUpdate(replicas[s]);
      response.epoch = std::max(response.epoch, shard_response.epoch);
      // A replica delete missing is expected exactly when the owner also
      // missed (the object never existed); only non-NotFound errors
      // propagate.
      if (!shard_response.status.ok() &&
          shard_response.status.code() != StatusCode::kNotFound) {
        response.status = shard_response.status;
      }
    }
  }
  if (response.status.ok() && response.delete_misses > 0) {
    response.status = Status::NotFound(
        StrFormat("%llu delete(s) missed", static_cast<unsigned long long>(
                                               response.delete_misses)));
  }
  response.latency_micros = timer.ElapsedMicros();
  return response;
}

MetricsSnapshot ShardRouter::SnapshotMetrics() const {
  MetricsSnapshot total;
  LatencyHistogram merged;
  for (const Shard& shard : shards_) {
    const MetricsSnapshot s = shard.service->SnapshotMetrics();
    total.queries += s.queries;
    total.failures += s.failures;
    total.not_found += s.not_found;
    total.rejections += s.rejections;
    total.slow_queries += s.slow_queries;
    total.cancelled += s.cancelled;
    total.deadline_exceeded += s.deadline_exceeded;
    total.io_errors += s.io_errors;
    total.shed += s.shed;
    total.retries += s.retries;
    total.max_queue_depth = std::max(total.max_queue_depth, s.max_queue_depth);
    total.wall_seconds = std::max(total.wall_seconds, s.wall_seconds);
    total.traversal_reads += s.traversal_reads;
    total.window_query_reads += s.window_query_reads;
    total.cache_hits += s.cache_hits;
    total.result_cache_hits += s.result_cache_hits;
    total.result_cache_misses += s.result_cache_misses;
    total.result_cache_evictions += s.result_cache_evictions;
    total.result_cache_entries += s.result_cache_entries;
    total.result_cache_bytes += s.result_cache_bytes;
    total.window_memo_hits += s.window_memo_hits;
    merged.Merge(shard.service->SnapshotLatencyHistogram());
  }
  total.latency_p50_us = merged.Quantile(0.50);
  total.latency_p95_us = merged.Quantile(0.95);
  total.latency_p99_us = merged.Quantile(0.99);
  total.latency_min_us = merged.min();
  total.latency_max_us = merged.max();
  total.latency_mean_us = merged.Mean();
  return total;
}

LatencyHistogram ShardRouter::SnapshotLatencyHistogram() const {
  LatencyHistogram merged;
  for (const Shard& shard : shards_) merged.Merge(shard.service->SnapshotLatencyHistogram());
  return merged;
}

std::vector<std::shared_ptr<const QueryTrace>> ShardRouter::SlowTraces() const {
  std::vector<std::shared_ptr<const QueryTrace>> traces;
  for (const Shard& shard : shards_) {
    std::vector<std::shared_ptr<const QueryTrace>> shard_traces = shard.service->SlowTraces();
    traces.insert(traces.end(), shard_traces.begin(), shard_traces.end());
  }
  return traces;
}

void ShardRouter::AppendPrometheusText(std::string* out) const {
  // Distinct family names from the aggregate nwc_* block the serving layer
  // renders, so per-shard series never double-count an aggregate.
  std::vector<MetricsSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const Shard& shard : shards_) snapshots.push_back(shard.service->SnapshotMetrics());

  PromCounter(out, "nwc_shard_queries_total", "Completed queries per shard (ok or failed).");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_queries_total", s, snapshots[s].queries);
  }
  PromCounter(out, "nwc_shard_query_failures_total", "Non-OK queries per shard.");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_query_failures_total", s, snapshots[s].failures);
  }
  PromCounter(out, "nwc_shard_load_shed_total",
              "Requests shed past the shed watermark, per shard.");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_load_shed_total", s, snapshots[s].shed);
  }
  PromCounter(out, "nwc_shard_node_reads_total",
              "R*-tree node reads per shard (all query phases).");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_node_reads_total", s, snapshots[s].total_reads());
  }
  PromCounter(out, "nwc_shard_result_cache_hits_total",
              "Queries answered from the shard's result cache.");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_result_cache_hits_total", s, snapshots[s].result_cache_hits);
  }
  PromGauge(out, "nwc_shard_resident_objects",
            "Objects resident in the shard's tree at build (owned + halo replicas).");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_resident_objects", s, shards_[s].resident_count);
  }
  PromGauge(out, "nwc_shard_owned_objects", "Objects owned by the shard at build.");
  for (size_t s = 0; s < shards_.size(); ++s) {
    PromSeries(out, "nwc_shard_owned_objects", s, shards_[s].owned_count);
  }
  if (config_.dynamic) {
    PromGauge(out, "nwc_shard_epoch", "Currently published snapshot epoch per shard.");
    for (size_t s = 0; s < shards_.size(); ++s) {
      PromSeries(out, "nwc_shard_epoch", s, shards_[s].store->epoch());
    }
  }
}

}  // namespace nwc
