#include "service/latency_histogram.h"

#include <algorithm>
#include <bit>

namespace nwc {
namespace {

// Values below 2^6 get one bucket each; each power-of-two range above is
// split into 2^5 sub-buckets (relative resolution 1/32).
constexpr int kExactBits = 6;
constexpr int kSubBucketBits = 5;
constexpr size_t kExactBuckets = size_t{1} << kExactBits;          // 64
constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;        // 32
constexpr size_t kRanges = 64 - kExactBits;                        // 58
constexpr size_t kBucketCount = kExactBuckets + kRanges * kSubBuckets;

}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kExactBuckets) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const size_t range = static_cast<size_t>(msb) - (kExactBits - 1);  // >= 1
  const size_t sub = static_cast<size_t>(value >> range) - kSubBuckets;
  return kExactBuckets + (range - 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < kExactBuckets) return static_cast<uint64_t>(index);
  const size_t range = (index - kExactBuckets) / kSubBuckets + 1;
  const uint64_t sub = (index - kExactBuckets) % kSubBuckets + kSubBuckets;
  return ((sub + 1) << range) - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based: ceil(q * count), at least 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.9999999999));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace nwc
