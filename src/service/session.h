#ifndef NWC_SERVICE_SESSION_H_
#define NWC_SERVICE_SESSION_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/nwc_types.h"
#include "grid/density_grid.h"
#include "rtree/iwp_index.h"
#include "rtree/rstar_tree.h"

namespace nwc {

/// What auxiliary structures a Session builds next to the tree. The
/// defaults cover NWC* (every optimization available); disable structures
/// the deployed option presets never use to save build time and memory.
struct SessionConfig {
  bool build_iwp = true;      ///< IWP pointer tables (needed by use_iwp)
  bool build_grid = true;     ///< density grid (needed by use_dep)
  double grid_cell_size = 25.0;  ///< cell side for the density grid
  /// Grid data space; an empty rect means "the tree's bounds". Pass the
  /// normalized space when queries may fall outside the data bounds.
  Rect grid_space = Rect::Empty();

  Status Validate() const;
};

/// An immutable, shareable snapshot of the index stack: the R*-tree plus
/// the optional IWP augmentation and density grid built over it.
///
/// A Session is the unit the service shares across worker threads: after
/// Open() (or FromParts()) returns, nothing in it ever mutates, so any
/// number of concurrent readers is safe (see the ThreadSafety notes on
/// RStarTree, IwpIndex and DensityGrid). Mutating the tree requires
/// publishing a new Session — either by hand, or through the epoch-based
/// SnapshotStore (service/snapshot.h), which keeps a mutable writer stack
/// and publishes immutable Sessions from it.
class Session {
 public:
  /// Takes ownership of `tree` and builds the configured auxiliary
  /// structures (grid objects are collected from the tree's own leaves, so
  /// no separate dataset is needed). Returns InvalidArgument for a bad
  /// config.
  static Result<Session> Open(RStarTree tree, const SessionConfig& config = SessionConfig());

  /// Builder hook for the snapshot layer: adopts an already-built stack.
  /// `iwp` and `grid` may be null (the session then rejects schemes that
  /// need them); when present they must have been built over / maintained
  /// in lockstep with `tree`, and `grid` must be frozen (prefix sums
  /// clean). Performs no validation beyond null checks.
  static Session FromParts(std::unique_ptr<RStarTree> tree, std::unique_ptr<IwpIndex> iwp,
                           std::unique_ptr<DensityGrid> grid);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const RStarTree& tree() const { return *tree_; }
  /// nullptr when the session was opened without IWP.
  const IwpIndex* iwp() const { return iwp_.get(); }
  /// nullptr when the session was opened without the grid.
  const DensityGrid* grid() const { return grid_.get(); }

  /// True when every structure the preset's techniques need is present.
  bool Supports(const NwcOptions& options) const {
    return (!options.use_iwp || iwp_ != nullptr) && (!options.use_dep || grid_ != nullptr);
  }

 private:
  Session() = default;

  // unique_ptrs keep Session movable while workers hold stable references.
  std::unique_ptr<RStarTree> tree_;
  std::unique_ptr<IwpIndex> iwp_;
  std::unique_ptr<DensityGrid> grid_;
};

/// Collects every stored object by walking the tree's leaves (structural
/// access, no I/O charged). Used to build grids from the index itself and
/// to seed rebuild-from-scratch oracles in the differential tests.
std::vector<DataObject> CollectTreeObjects(const RStarTree& tree);

}  // namespace nwc

#endif  // NWC_SERVICE_SESSION_H_
