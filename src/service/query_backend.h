#ifndef NWC_SERVICE_QUERY_BACKEND_H_
#define NWC_SERVICE_QUERY_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/nwc_types.h"
#include "obs/query_trace.h"
#include "service/latency_histogram.h"
#include "service/service_metrics.h"
#include "service/snapshot.h"

namespace nwc {

/// One NWC request: the query plus an optional per-request option
/// override (scheme + measure); absent means the service default.
/// `deadline_micros` bounds the request's total time from submit (queue
/// wait included); 0 applies the service's default_deadline_micros.
struct NwcRequest {
  NwcQuery query;
  std::optional<NwcOptions> options;
  uint64_t deadline_micros = 0;
};

/// One kNWC request; see NwcRequest.
struct KnwcRequest {
  KnwcQuery query;
  std::optional<NwcOptions> options;
  uint64_t deadline_micros = 0;
};

/// Outcome of one NWC request. `result` is meaningful only when
/// status.ok(); `io` is the query's private counter (also merged into the
/// service metrics), `latency_micros` the wall time inside the worker.
struct NwcResponse {
  Status status;
  NwcResult result;
  uint64_t latency_micros = 0;
  uint64_t traversal_reads = 0;
  uint64_t window_query_reads = 0;
  uint64_t cache_hits = 0;
  /// True when the response was served from the result cache (all read
  /// counters are then 0 — a hit performs no tree I/O).
  bool result_cache_hit = false;
  /// True when a sharded backend answered from a subset of its shards
  /// under the degrade partial-failure policy (see ShardRouter): the
  /// result is the best over the shards that answered, which may miss the
  /// true optimum. Always false from a single-instance QueryService.
  bool degraded = false;
};

/// Outcome of one kNWC request; see NwcResponse.
struct KnwcResponse {
  Status status;
  KnwcResult result;
  uint64_t latency_micros = 0;
  uint64_t traversal_reads = 0;
  uint64_t window_query_reads = 0;
  uint64_t cache_hits = 0;
  bool result_cache_hit = false;
  bool degraded = false;
};

/// Outcome of one ApplyUpdate call (dynamic services only). `epoch` is the
/// epoch the mutations were published under; on a static service `status`
/// is FailedPrecondition and everything else is zero. A NotFound status
/// reports delete misses — the other mutations in the batch were still
/// applied and published.
struct UpdateResponse {
  Status status;
  uint64_t epoch = 0;
  uint64_t applied_inserts = 0;
  uint64_t applied_deletes = 0;
  uint64_t delete_misses = 0;
  uint64_t latency_micros = 0;
};

/// Worker-side timestamps for one traced async request: absolute
/// microseconds on the steady clock (SteadyNowMicros()), so a caller on
/// the same host subtracts them from its own marks directly. On the
/// synchronous failure paths (invalid, shed, shutdown) all three carry
/// the same instant — the request never reached the queue.
struct AsyncTiming {
  uint64_t enqueue_us = 0;  ///< accepted into the pool queue
  uint64_t dequeue_us = 0;  ///< a worker picked the job up
  uint64_t finish_us = 0;   ///< response populated, handed to `done`
};

/// What the serving layer needs from a query execution engine — the
/// interface NetServer is written against, implemented by the single-tree
/// QueryService and by the spatially sharded ShardRouter. Callback-based
/// submits suit the event loop (done may run synchronously on failure
/// paths or on an executor thread otherwise); the metrics accessors feed
/// the /metrics, /varz and /debug/slow admin endpoints.
///
/// ThreadSafety: every member may be called from any thread; `done`
/// callbacks must tolerate any calling context.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// `done` is invoked exactly once with the response — possibly
  /// synchronously inside this call when the request is invalid, shed, or
  /// the backend is shut down (typed response statuses, never exceptions).
  virtual void SubmitNwcAsync(NwcRequest request, std::function<void(NwcResponse)> done) = 0;
  virtual void SubmitKnwcAsync(KnwcRequest request, std::function<void(KnwcResponse)> done) = 0;

  /// Traced variants: `done` additionally receives worker-side timestamps
  /// (see AsyncTiming).
  virtual void SubmitNwcAsyncTraced(
      NwcRequest request, std::function<void(NwcResponse, const AsyncTiming&)> done) = 0;
  virtual void SubmitKnwcAsyncTraced(
      KnwcRequest request, std::function<void(KnwcResponse, const AsyncTiming&)> done) = 0;

  /// Applies a mutation batch and publishes the next epoch (synchronous).
  /// Static backends answer FailedPrecondition.
  virtual UpdateResponse ApplyUpdate(const MutationBatch& mutations) = 0;

  /// Aggregated service metrics (a sharded backend sums its shards).
  virtual MetricsSnapshot SnapshotMetrics() const = 0;

  /// The raw latency histogram backing the snapshot's quantiles (a sharded
  /// backend merges its shards bucket-wise).
  virtual LatencyHistogram SnapshotLatencyHistogram() const = 0;

  /// Traces retained by the slow-query machinery, oldest first.
  virtual std::vector<std::shared_ptr<const QueryTrace>> SlowTraces() const = 0;

  /// Hook for backend-specific Prometheus series, appended after the
  /// aggregate families the serving layer renders from SnapshotMetrics()/
  /// SnapshotLatencyHistogram() (the exposition renderer lives above this
  /// library in the dependency graph, so the base text is composed there).
  /// Sharded backends override to emit per-shard series carrying a
  /// `shard` label; the default appends nothing.
  virtual void AppendPrometheusText(std::string* out) const { (void)out; }
};

}  // namespace nwc

#endif  // NWC_SERVICE_QUERY_BACKEND_H_
