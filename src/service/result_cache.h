#ifndef NWC_SERVICE_RESULT_CACHE_H_
#define NWC_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/nwc_types.h"

namespace nwc {

/// Canonical, hashable identity of one NWC/kNWC request. Two requests map
/// to the same key exactly when the engines are guaranteed to return
/// bit-identical results for them:
///
///  - the query kind (NWC vs kNWC) and every numeric parameter (q, l, w,
///    n, and for kNWC k and m) compared by exact bit pattern, except that
///    -0.0 is folded to +0.0 first. Sign-folding the zero is the *only*
///    sound coordinate canonicalization: the engines are symmetric under
///    it (IEEE arithmetic treats -0.0 == +0.0 everywhere the search
///    compares or subtracts coordinates), whereas a full quadrant
///    reflection of q moves the query relative to the actual data and
///    changes the answer.
///  - the optimization scheme and distance measure. Every preset returns
///    a group at the same *distance*, but equal-distance ties can break
///    differently between schemes, so serving a Star result for a Plain
///    request would not be bit-exact. Keeping the scheme in the key keeps
///    the cache's contract exact instead of merely optimal.
///  - the data epoch the answer was computed against (0 for static
///    sessions). Pinning the epoch into the key makes publish-vs-cache
///    races structurally impossible: a result computed on epoch N and
///    inserted after epoch N+1 published can only ever be found by a
///    reader still pinned to N — for whom it is exactly right.
struct ResultCacheKey {
  uint8_t kind = 0;       ///< 0 = NWC, 1 = kNWC
  uint8_t scheme = 0;     ///< packed use_srr/dip/dep/iwp bits
  uint8_t measure = 0;    ///< DistanceMeasure
  uint64_t qx_bits = 0;   ///< bit pattern of q.x (-0.0 folded to +0.0)
  uint64_t qy_bits = 0;
  uint64_t l_bits = 0;
  uint64_t w_bits = 0;
  uint64_t n = 0;
  uint64_t k = 0;  ///< 0 for NWC
  uint64_t m = 0;  ///< 0 for NWC
  uint64_t data_epoch = 0;  ///< snapshot epoch (0 = static session)

  static ResultCacheKey ForNwc(const NwcQuery& query, const NwcOptions& options,
                               uint64_t data_epoch = 0);
  static ResultCacheKey ForKnwc(const KnwcQuery& query, const NwcOptions& options,
                                uint64_t data_epoch = 0);

  /// FNV-1a over the packed fields; also used to pick the shard.
  uint64_t Hash() const;

  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.kind == b.kind && a.scheme == b.scheme && a.measure == b.measure &&
           a.qx_bits == b.qx_bits && a.qy_bits == b.qy_bits && a.l_bits == b.l_bits &&
           a.w_bits == b.w_bits && a.n == b.n && a.k == b.k && a.m == b.m &&
           a.data_epoch == b.data_epoch;
  }
};

/// Sharded, thread-safe LRU cache of exact NWC/kNWC query results.
///
/// Requests are canonicalized into ResultCacheKeys; a hit returns a copy
/// of the stored result, bit-identical to what the engines would compute
/// (the service only inserts results of queries that completed with an OK
/// status — aborted or failed queries never populate the cache). Negative
/// results (found == false / zero groups) are cached too: they are exact
/// answers and often the most expensive to recompute.
///
/// Capacity is accounted in approximate bytes (entry struct + stored
/// objects); each shard owns capacity_bytes / shards and evicts its own
/// LRU tail independently. Sharding bounds lock contention: workers
/// serving different queries almost always lock different shards.
///
/// Invalidation is generational: Invalidate() bumps a global generation
/// counter, and entries stamped with an older generation are treated as
/// misses and lazily erased on the next probe. The service calls this when
/// its Session is swapped — the cache object can stay in place while every
/// stale answer becomes unreachable immediately.
///
/// ThreadSafety: all methods are safe to call concurrently; each shard is
/// guarded by its own mutex and the generation counter is atomic.
class ResultCache {
 public:
  /// Aggregated counters across all shards. hits/misses/insertions/
  /// evictions are monotonic (until ResetStats); entries/bytes are
  /// point-in-time gauges.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };

  /// A cache of at most `capacity_bytes` (approximate), split over
  /// `shards` independent LRU shards. `shards` is rounded up to 1.
  explicit ResultCache(size_t capacity_bytes, size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Probes for an exact NWC result. On a hit, copies it into `out` and
  /// refreshes the entry's LRU position. Counts one hit or one miss.
  /// `data_epoch` pins the probe to one snapshot epoch (0 = static).
  bool LookupNwc(const NwcQuery& query, const NwcOptions& options, NwcResult* out,
                 uint64_t data_epoch = 0);

  /// Stores an NWC result under the canonicalized key (replacing any
  /// previous entry), evicting LRU entries while the shard is over budget.
  /// Entries larger than a whole shard are not admitted.
  void InsertNwc(const NwcQuery& query, const NwcOptions& options, const NwcResult& result,
                 uint64_t data_epoch = 0);

  bool LookupKnwc(const KnwcQuery& query, const NwcOptions& options, KnwcResult* out,
                  uint64_t data_epoch = 0);
  void InsertKnwc(const KnwcQuery& query, const NwcOptions& options, const KnwcResult& result,
                  uint64_t data_epoch = 0);

  /// Makes every current entry unreachable (lazily erased). Call when the
  /// data under the cache changes — e.g. the service's Session is swapped.
  void Invalidate() { generation_.fetch_add(1, std::memory_order_relaxed); }

  /// Aggregated counters + gauges across shards.
  Stats GetStats() const;

  /// Zeroes hits/misses/insertions/evictions (entries stay cached).
  void ResetStats();

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t shard_count() const { return shards_.size(); }
  uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    ResultCacheKey key;
    uint64_t generation = 0;
    size_t bytes = 0;
    bool is_knwc = false;
    NwcResult nwc;
    KnwcResult knwc;
  };

  struct KeyHash {
    size_t operator()(const ResultCacheKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };

  struct Shard {
    mutable std::mutex mu;
    // Most recently used at the front.
    std::list<Entry> lru;
    std::unordered_map<ResultCacheKey, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const ResultCacheKey& key) {
    return *shards_[key.Hash() % shards_.size()];
  }

  /// Shared hit/miss machinery; `fill` copies the entry's payload out.
  template <typename Fill>
  bool LookupImpl(const ResultCacheKey& key, const Fill& fill);

  void InsertImpl(const ResultCacheKey& key, Entry entry);

  size_t capacity_bytes_;
  size_t shard_capacity_bytes_;
  std::atomic<uint64_t> generation_{0};
  // unique_ptr: Shard holds a mutex and must not move.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nwc

#endif  // NWC_SERVICE_RESULT_CACHE_H_
