#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/knwc_engine.h"
#include "core/nwc_engine.h"
#include "service/batch_planner.h"

namespace nwc {

Status ServiceConfig::Validate() const {
  if (num_threads == 0) return Status::InvalidArgument("num_threads must be >= 1");
  if (queue_capacity == 0) return Status::InvalidArgument("queue_capacity must be >= 1");
  if (trace_slow_queries && trace_ring_capacity == 0) {
    return Status::InvalidArgument("trace_ring_capacity must be >= 1 when tracing is enabled");
  }
  if (shed_queue_depth > queue_capacity) {
    return Status::InvalidArgument("shed_queue_depth cannot exceed queue_capacity");
  }
  if (max_retries < 0) return Status::InvalidArgument("max_retries must be >= 0");
  if (result_cache_bytes > 0 && result_cache_shards == 0) {
    return Status::InvalidArgument("result_cache_shards must be >= 1 when the cache is enabled");
  }
  const Status plan_ok = fault_plan.Validate();
  if (!plan_ok.ok()) return plan_ok;
  return Status::Ok();
}

uint64_t RetryBackoffMicros(uint64_t base_micros, int attempt) {
  if (base_micros == 0) return 0;
  if (base_micros >= kMaxRetryBackoffMicros) return kMaxRetryBackoffMicros;
  if (attempt <= 0) return base_micros;
  if (attempt >= 63) return kMaxRetryBackoffMicros;
  // base * 2^attempt would pass the cap exactly when base > cap >> attempt;
  // testing before shifting keeps the shift itself overflow-free.
  if (base_micros > (kMaxRetryBackoffMicros >> attempt)) return kMaxRetryBackoffMicros;
  return base_micros << attempt;
}

QueryService::QueryService(const Session& session, const ServiceConfig& config)
    : QueryService(&session, nullptr, config) {}

QueryService::QueryService(SnapshotStore& store, const ServiceConfig& config)
    : QueryService(nullptr, &store, config) {}

QueryService::QueryService(const Session* session, SnapshotStore* store,
                           const ServiceConfig& config)
    : static_session_(session),
      store_(store),
      config_(config),
      worker_pools_(config.num_threads == 0 ? 1 : config.num_threads),
      pool_(config.num_threads, config.queue_capacity) {
  if (config_.worker_pool_pages > 0) {
    for (auto& pool : worker_pools_) {
      pool = std::make_unique<BufferPool>(config_.worker_pool_pages);
    }
  }
  if (config_.fault_plan.enabled()) {
    worker_injectors_.resize(worker_pools_.size());
    for (size_t i = 0; i < worker_injectors_.size(); ++i) {
      FaultPlan plan = config_.fault_plan;
      plan.seed += i;  // decorrelate Bernoulli streams across workers
      worker_injectors_[i] = std::make_unique<FaultInjector>(plan);
    }
  }
  if (config_.trace_slow_queries) {
    slow_traces_ = std::make_unique<TraceRing>(config_.trace_ring_capacity);
  }
  if (config_.result_cache_bytes > 0) {
    result_cache_ =
        std::make_unique<ResultCache>(config_.result_cache_bytes, config_.result_cache_shards);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

Status QueryService::CheckRequest(const std::optional<NwcOptions>& override_options,
                                  NwcOptions* effective) const {
  *effective = override_options.value_or(config_.default_options);
  // Dynamic mode checks against the store's configuration, not a specific
  // snapshot: a snapshot missing its IWP inside the staleness bound is a
  // per-query degrade (EffectiveOptions), not a request error.
  const bool supported =
      store_ != nullptr ? store_->Supports(*effective) : static_session_->Supports(*effective);
  if (!supported) {
    return Status::FailedPrecondition(
        "session lacks the IWP index / density grid required by the requested scheme");
  }
  return Status::Ok();
}

QueryService::SessionLease QueryService::AcquireLease() const {
  SessionLease lease;
  if (store_ != nullptr) {
    SnapshotStore::SnapshotRef ref = store_->Acquire();
    lease.session = ref.session.get();
    lease.snapshot = std::move(ref.session);
    lease.epoch = ref.epoch;
  } else {
    lease.session = static_session_;
  }
  return lease;
}

UpdateResponse QueryService::ApplyUpdate(const MutationBatch& mutations) {
  UpdateResponse response;
  Stopwatch timer;
  if (store_ == nullptr) {
    response.status =
        Status::FailedPrecondition("service is static: updates require a SnapshotStore");
    return response;
  }
  SnapshotStore::ApplyStats stats;
  SnapshotStore::SnapshotRef ref;
  response.status = store_->ApplyAndPublish(mutations, &stats, &ref);
  // Old-epoch cache entries are already unreachable (the epoch is part of
  // the key); the generation bump lets the cache lazily reclaim them.
  InvalidateResultCache();
  response.epoch = ref.epoch;
  response.applied_inserts = stats.inserts;
  response.applied_deletes = stats.deletes;
  response.delete_misses = stats.delete_misses;
  response.latency_micros = timer.ElapsedMicros();
  return response;
}

bool QueryService::AdmitJob(size_t request_count) {
  size_t depth = admitted_depth_.load(std::memory_order_relaxed);
  while (true) {
    if (config_.shed_queue_depth > 0 && depth >= config_.shed_queue_depth) {
      metrics_.RecordShed(request_count);
      return false;
    }
    // One CAS decides check AND increment: a racing submitter either sees
    // this slot (and sheds / retries at the new depth) or lost the race
    // and re-reads. No interleaving admits past the watermark.
    if (admitted_depth_.compare_exchange_weak(depth, depth + 1, std::memory_order_relaxed)) {
      metrics_.RecordQueueDepth(depth + 1);
      return true;
    }
  }
}

QueryService::RequestTiming QueryService::MakeTiming(uint64_t request_deadline_micros) const {
  RequestTiming timing;
  const uint64_t micros =
      request_deadline_micros != 0 ? request_deadline_micros : config_.default_deadline_micros;
  if (micros != 0) {
    timing.has_deadline = true;
    timing.deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  }
  timing.epoch = cancel_epoch_.load(std::memory_order_relaxed);
  return timing;
}

namespace {

/// Human-readable query description stamped on retained slow traces.
std::string DescribeQuery(const NwcQuery& query, const NwcOptions& options) {
  std::string scheme;
  if (options.use_srr) scheme += "+srr";
  if (options.use_dip) scheme += "+dip";
  if (options.use_dep) scheme += "+dep";
  if (options.use_iwp) scheme += "+iwp";
  if (scheme.empty()) scheme = "plain"; else scheme.erase(0, 1);
  return StrFormat("nwc q=(%.3f,%.3f) l=%g w=%g n=%zu scheme=%s measure=%s", query.q.x,
                   query.q.y, query.length, query.width, query.n, scheme.c_str(),
                   DistanceMeasureName(options.measure));
}

std::string DescribeQuery(const KnwcQuery& query, const NwcOptions& options) {
  return StrFormat("k%s k=%zu m=%zu", DescribeQuery(query.base, options).c_str(), query.k,
                   query.m);
}

// Kind dispatch for the result cache: one Execute template serves both
// query kinds, these overloads route to the matching cache methods.
bool CacheLookup(ResultCache& cache, const NwcQuery& query, const NwcOptions& options,
                 NwcResult* out, uint64_t data_epoch) {
  return cache.LookupNwc(query, options, out, data_epoch);
}
bool CacheLookup(ResultCache& cache, const KnwcQuery& query, const NwcOptions& options,
                 KnwcResult* out, uint64_t data_epoch) {
  return cache.LookupKnwc(query, options, out, data_epoch);
}
void CacheInsert(ResultCache& cache, const NwcQuery& query, const NwcOptions& options,
                 const NwcResult& result, uint64_t data_epoch) {
  cache.InsertNwc(query, options, result, data_epoch);
}
void CacheInsert(ResultCache& cache, const KnwcQuery& query, const NwcOptions& options,
                 const KnwcResult& result, uint64_t data_epoch) {
  cache.InsertKnwc(query, options, result, data_epoch);
}

}  // namespace

template <typename Response, typename Query, typename Done>
void QueryService::Execute(size_t worker_index, const Query& query, const NwcOptions& requested,
                           const RequestTiming& timing, Done done, WindowQueryMemo* memo,
                           const SessionLease* lease) {
  // Dequeue-time queue-depth observation: the submit-side sample alone
  // under-reports bursts, because submitters that would see the peak are
  // the ones blocked on the full queue.
  metrics_.RecordQueueDepth(pool_.QueueDepth());

  // Pin one epoch for the whole query (all retry attempts included):
  // queries never observe a publish mid-flight. Batch groups pass their
  // own lease so every member — and the shared window memo — sees one
  // consistent epoch.
  SessionLease own_lease;
  if (lease == nullptr) {
    own_lease = AcquireLease();
    lease = &own_lease;
  }
  const Session& session = *lease->session;
  // The effective options also key the result cache, so a degraded
  // (IWP-less) answer can never be replayed to a fully-indexed epoch.
  const NwcOptions options = EffectiveOptions(*lease, requested);

  Response response;
  IoCounter total_io;  // merged across attempts for metrics/response
  BufferPool* worker_pool = worker_pools_[worker_index].get();
  FaultInjector* injector =
      worker_injectors_.empty() ? nullptr : worker_injectors_[worker_index].get();

  Stopwatch timer;
  bool found = false;
  int attempt = 0;
  while (true) {
    // Per-attempt state: a fresh counter so a failed attempt's I/O still
    // rolls up, a fresh control so a transient fault doesn't poison the
    // retry, and a fresh trace so the retained trace describes the final
    // attempt. The absolute deadline and cancel epoch from submit time
    // carry across attempts — retries never extend the budget.
    IoCounter io;
    if (worker_pool != nullptr) {
      io.SetCacheProbe([worker_pool](uint32_t page) { return worker_pool->Access(page); });
    }
    const bool tracing = slow_traces_ != nullptr;
    QueryTrace trace = tracing ? QueryTrace::Enabled() : QueryTrace();
    QueryTrace* trace_ptr = tracing ? &trace : nullptr;
    QueryControl control;
    if (timing.has_deadline) control.SetDeadline(timing.deadline);
    control.SetCancelCell(&cancel_epoch_, timing.epoch);
    if (injector != nullptr) {
      QueryControl* ctl = &control;
      QueryTrace& tr = trace;
      io.SetReadProbe([injector, ctl, &tr](uint32_t page) {
        Status fault = injector->OnRead(page);
        if (!fault.ok()) {
          tr.Count(TraceCounter::kFaultsInjected);
          ctl->ReportFault(std::move(fault));
        }
      });
    }

    // Result-cache probe — strictly after the control is armed, so a
    // request that is already past its deadline (or cancelled) takes the
    // engine's early-stop path below instead of being served from cache:
    // deadline accounting always wins over a hit. Probing only on the
    // first attempt keeps the cache's miss counter one-per-query.
    bool cache_hit = false;
    if (attempt == 0 && result_cache_ != nullptr && !control.ShouldStop() &&
        CacheLookup(*result_cache_, query, options, &response.result, lease->epoch)) {
      cache_hit = true;
      response.status = Status::Ok();
      response.result_cache_hit = true;
      if constexpr (std::is_same_v<Response, NwcResponse>) {
        found = response.result.found;
      } else {
        found = !response.result.groups.empty();
      }
      trace.Count(TraceCounter::kResultCacheHits);
      // An (instant) root span keeps retained hit traces well-formed.
      TraceSpanScope root_span(trace, SpanKind::kQuery, &io);
    }

    if (!cache_hit) {
      if constexpr (std::is_same_v<Response, NwcResponse>) {
        NwcEngine engine(session.tree(), session.iwp(), session.grid());
        Result<NwcResult> result = engine.Execute(query, options, &io, trace_ptr, &control, memo);
        response.status = result.status();
        if (result.ok()) {
          found = result->found;
          response.result = std::move(result).value();
        }
      } else {
        KnwcEngine engine(session.tree(), session.iwp(), session.grid());
        Result<KnwcResult> result = engine.Execute(query, options, &io, trace_ptr, &control, memo);
        response.status = result.status();
        if (result.ok()) {
          found = !result->groups.empty();
          response.result = std::move(result).value();
        }
      }
    }
    total_io.Add(io);

    // Bounded retry for transient I/O faults — never past the deadline.
    const auto retry_now = std::chrono::steady_clock::now();
    if (response.status.code() == StatusCode::kIoError && attempt < config_.max_retries &&
        !(timing.has_deadline && retry_now >= timing.deadline)) {
      metrics_.RecordRetry();
      uint64_t backoff_micros = RetryBackoffMicros(config_.retry_backoff_micros, attempt);
      if (timing.has_deadline) {
        // Never sleep past the request's own deadline: a huge configured
        // backoff must not turn a bounded request into an unbounded wait.
        const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
                                   timing.deadline - retry_now)
                                   .count();
        backoff_micros = std::min(backoff_micros, static_cast<uint64_t>(remaining));
      }
      if (backoff_micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_micros));
      }
      ++attempt;
      continue;
    }

    // Completed queries (and only they) populate the cache: a stopped or
    // faulted query would poison it with partial answers, and re-inserting
    // on a hit would churn the LRU for nothing.
    if (result_cache_ != nullptr && !cache_hit && response.status.ok()) {
      CacheInsert(*result_cache_, query, options, response.result, lease->epoch);
    }

    response.latency_micros = timer.ElapsedMicros();
    response.traversal_reads = total_io.traversal_reads();
    response.window_query_reads = total_io.window_query_reads();
    response.cache_hits = total_io.cache_hits();

    metrics_.RecordQuery(response.latency_micros, total_io, response.status.code(), found);
    if (slow_traces_ != nullptr && response.latency_micros >= config_.slow_trace_us) {
      metrics_.RecordSlowQuery();
      trace.set_label(StrFormat("%s latency_us=%llu", DescribeQuery(query, options).c_str(),
                                static_cast<unsigned long long>(response.latency_micros)));
      slow_traces_->Add(std::move(trace));
    }
    done(std::move(response));
    return;
  }
}

namespace {

/// A response that never reached a worker (service-level failure).
template <typename Response>
Response FailedResponse(Status status) {
  Response response;
  response.status = std::move(status);
  return response;
}

/// Adapts a shared promise into Execute's completion callable.
template <typename Response>
auto FulfillPromise(std::shared_ptr<std::promise<Response>> promise) {
  return [promise](Response response) { promise->set_value(std::move(response)); };
}

}  // namespace

std::future<NwcResponse> QueryService::SubmitNwc(NwcRequest request) {
  auto promise = std::make_shared<std::promise<NwcResponse>>();
  std::future<NwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<NwcResponse>(status));
    return future;
  }
  // Load shedding: past the watermark, failing fast beats blocking the
  // caller on a queue that is already drowning. AdmitJob decides and
  // reserves the slot in one atomic step.
  if (!AdmitJob(1)) {
    promise->set_value(FailedResponse<NwcResponse>(
        Status::Unavailable("request shed: queue past the shed watermark")));
    return future;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        ReleaseJobSlot();
        Execute<NwcResponse>(worker, query, options, timing, FulfillPromise(promise));
      });
  if (!accepted) {
    ReleaseJobSlot();
    promise->set_value(FailedResponse<NwcResponse>(
        Status::FailedPrecondition("query service is shut down")));
  }
  return future;
}

std::future<KnwcResponse> QueryService::SubmitKnwc(KnwcRequest request) {
  auto promise = std::make_shared<std::promise<KnwcResponse>>();
  std::future<KnwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<KnwcResponse>(status));
    return future;
  }
  if (!AdmitJob(1)) {
    promise->set_value(FailedResponse<KnwcResponse>(
        Status::Unavailable("request shed: queue past the shed watermark")));
    return future;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        ReleaseJobSlot();
        Execute<KnwcResponse>(worker, query, options, timing, FulfillPromise(promise));
      });
  if (!accepted) {
    ReleaseJobSlot();
    promise->set_value(FailedResponse<KnwcResponse>(
        Status::FailedPrecondition("query service is shut down")));
  }
  return future;
}

bool QueryService::TrySubmitNwc(NwcRequest request, std::future<NwcResponse>* out) {
  auto promise = std::make_shared<std::promise<NwcResponse>>();
  std::future<NwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<NwcResponse>(status));
    *out = std::move(future);
    return true;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  // TrySubmit never sheds (full-queue fast-fail is its own admission
  // control) but still occupies a slot, so the watermark keeps counting
  // every queued job under mixed Try/blocking traffic.
  TakeJobSlot();
  const bool accepted = pool_.TrySubmit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        ReleaseJobSlot();
        Execute<NwcResponse>(worker, query, options, timing, FulfillPromise(promise));
      });
  if (!accepted) {
    ReleaseJobSlot();
    metrics_.RecordRejection();
    return false;
  }
  metrics_.RecordQueueDepth(pool_.QueueDepth());
  *out = std::move(future);
  return true;
}

bool QueryService::TrySubmitKnwc(KnwcRequest request, std::future<KnwcResponse>* out) {
  auto promise = std::make_shared<std::promise<KnwcResponse>>();
  std::future<KnwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<KnwcResponse>(status));
    *out = std::move(future);
    return true;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  TakeJobSlot();
  const bool accepted = pool_.TrySubmit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        ReleaseJobSlot();
        Execute<KnwcResponse>(worker, query, options, timing, FulfillPromise(promise));
      });
  if (!accepted) {
    ReleaseJobSlot();
    metrics_.RecordRejection();
    return false;
  }
  metrics_.RecordQueueDepth(pool_.QueueDepth());
  *out = std::move(future);
  return true;
}

void QueryService::SubmitNwcAsync(NwcRequest request, std::function<void(NwcResponse)> done) {
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    done(FailedResponse<NwcResponse>(status));
    return;
  }
  if (!AdmitJob(1)) {
    done(FailedResponse<NwcResponse>(
        Status::Unavailable("request shed: queue past the shed watermark")));
    return;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  // shared_ptr keeps the (possibly move-only-state) callback alive for the
  // copyable ThreadPool::Job and for the rejection path below.
  auto shared_done = std::make_shared<std::function<void(NwcResponse)>>(std::move(done));
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, shared_done](size_t worker) {
        ReleaseJobSlot();
        Execute<NwcResponse>(worker, query, options, timing,
                             [&shared_done](NwcResponse response) {
                               (*shared_done)(std::move(response));
                             });
      });
  if (!accepted) {
    ReleaseJobSlot();
    (*shared_done)(
        FailedResponse<NwcResponse>(Status::FailedPrecondition("query service is shut down")));
  }
}

void QueryService::SubmitKnwcAsync(KnwcRequest request, std::function<void(KnwcResponse)> done) {
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    done(FailedResponse<KnwcResponse>(status));
    return;
  }
  if (!AdmitJob(1)) {
    done(FailedResponse<KnwcResponse>(
        Status::Unavailable("request shed: queue past the shed watermark")));
    return;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  auto shared_done = std::make_shared<std::function<void(KnwcResponse)>>(std::move(done));
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, shared_done](size_t worker) {
        ReleaseJobSlot();
        Execute<KnwcResponse>(worker, query, options, timing,
                              [&shared_done](KnwcResponse response) {
                                (*shared_done)(std::move(response));
                              });
      });
  if (!accepted) {
    ReleaseJobSlot();
    (*shared_done)(
        FailedResponse<KnwcResponse>(Status::FailedPrecondition("query service is shut down")));
  }
}

void QueryService::SubmitNwcAsyncTraced(
    NwcRequest request, std::function<void(NwcResponse, const AsyncTiming&)> done) {
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    const uint64_t now = SteadyNowMicros();
    done(FailedResponse<NwcResponse>(status), AsyncTiming{now, now, now});
    return;
  }
  if (!AdmitJob(1)) {
    const uint64_t now = SteadyNowMicros();
    done(FailedResponse<NwcResponse>(
             Status::Unavailable("request shed: queue past the shed watermark")),
         AsyncTiming{now, now, now});
    return;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  auto shared_done =
      std::make_shared<std::function<void(NwcResponse, const AsyncTiming&)>>(std::move(done));
  AsyncTiming stamps;
  stamps.enqueue_us = SteadyNowMicros();
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, stamps, shared_done](size_t worker) mutable {
        ReleaseJobSlot();
        stamps.dequeue_us = SteadyNowMicros();
        Execute<NwcResponse>(
            worker, query, options, timing,
            [&shared_done, &stamps](NwcResponse response) {
              stamps.finish_us = SteadyNowMicros();
              (*shared_done)(std::move(response), stamps);
            });
      });
  if (!accepted) {
    ReleaseJobSlot();
    const uint64_t now = SteadyNowMicros();
    (*shared_done)(
        FailedResponse<NwcResponse>(Status::FailedPrecondition("query service is shut down")),
        AsyncTiming{now, now, now});
  }
}

void QueryService::SubmitKnwcAsyncTraced(
    KnwcRequest request, std::function<void(KnwcResponse, const AsyncTiming&)> done) {
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    const uint64_t now = SteadyNowMicros();
    done(FailedResponse<KnwcResponse>(status), AsyncTiming{now, now, now});
    return;
  }
  if (!AdmitJob(1)) {
    const uint64_t now = SteadyNowMicros();
    done(FailedResponse<KnwcResponse>(
             Status::Unavailable("request shed: queue past the shed watermark")),
         AsyncTiming{now, now, now});
    return;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  auto shared_done =
      std::make_shared<std::function<void(KnwcResponse, const AsyncTiming&)>>(std::move(done));
  AsyncTiming stamps;
  stamps.enqueue_us = SteadyNowMicros();
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, stamps, shared_done](size_t worker) mutable {
        ReleaseJobSlot();
        stamps.dequeue_us = SteadyNowMicros();
        Execute<KnwcResponse>(
            worker, query, options, timing,
            [&shared_done, &stamps](KnwcResponse response) {
              stamps.finish_us = SteadyNowMicros();
              (*shared_done)(std::move(response), stamps);
            });
      });
  if (!accepted) {
    ReleaseJobSlot();
    const uint64_t now = SteadyNowMicros();
    (*shared_done)(
        FailedResponse<KnwcResponse>(Status::FailedPrecondition("query service is shut down")),
        AsyncTiming{now, now, now});
  }
}

std::vector<NwcResponse> QueryService::RunNwcBatch(const std::vector<NwcRequest>& requests) {
  std::vector<std::future<NwcResponse>> futures;
  futures.reserve(requests.size());
  for (const NwcRequest& request : requests) futures.push_back(SubmitNwc(request));
  std::vector<NwcResponse> responses;
  responses.reserve(requests.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

std::vector<KnwcResponse> QueryService::RunKnwcBatch(const std::vector<KnwcRequest>& requests) {
  std::vector<std::future<KnwcResponse>> futures;
  futures.reserve(requests.size());
  for (const KnwcRequest& request : requests) futures.push_back(SubmitKnwc(request));
  std::vector<KnwcResponse> responses;
  responses.reserve(requests.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

namespace {

// The point a request probes at — what batch planning sorts by.
const Point& QueryPoint(const NwcQuery& query) { return query.q; }
const Point& QueryPoint(const KnwcQuery& query) { return query.base.q; }

}  // namespace

template <typename Response, typename Request>
std::vector<std::future<Response>> QueryService::SubmitBatchImpl(
    const std::vector<Request>& requests) {
  using Query = std::decay_t<decltype(std::declval<Request>().query)>;

  // Everything a group job needs, owned jointly by the jobs of this batch.
  // Slots of requests that failed CheckRequest keep a consumed promise and
  // are simply never planned.
  struct BatchState {
    std::vector<Query> queries;
    std::vector<NwcOptions> options;
    std::vector<RequestTiming> timings;
    std::vector<std::promise<Response>> promises;
  };
  auto state = std::make_shared<BatchState>();
  state->queries.reserve(requests.size());
  state->options.resize(requests.size());
  state->timings.resize(requests.size());
  state->promises.resize(requests.size());

  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  std::vector<BatchItem> plan_items;
  plan_items.reserve(requests.size());
  std::vector<size_t> plan_to_request;
  plan_to_request.reserve(requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    state->queries.push_back(requests[i].query);
    futures.push_back(state->promises[i].get_future());
    const Status status = CheckRequest(requests[i].options, &state->options[i]);
    if (!status.ok()) {
      state->promises[i].set_value(FailedResponse<Response>(status));
      continue;
    }
    // Deadlines start now: queue wait and earlier group members count.
    state->timings[i] = MakeTiming(requests[i].deadline_micros);
    plan_items.push_back(BatchItem{QueryPoint(requests[i].query), state->options[i]});
    plan_to_request.push_back(i);
  }

  // Planning only needs the data bounds for its Z-order normalization, so
  // a momentary lease suffices here; each group job pins its own epoch.
  const Rect plan_bounds = AcquireLease().session->tree().bounds();
  const std::vector<std::vector<size_t>> groups =
      PlanBatchGroups(plan_items, plan_bounds, config_.batch_group_size);

  for (const std::vector<size_t>& group : groups) {
    std::vector<size_t> request_indices;
    request_indices.reserve(group.size());
    for (const size_t plan_index : group) {
      request_indices.push_back(plan_to_request[plan_index]);
    }
    // Shed admission per group job, shed accounting per request: a group
    // bounced by the watermark fails each member with a typed Unavailable
    // and counts indices.size() sheds, so nwc_requests_shed_total stays
    // comparable between batched and per-query load.
    if (!AdmitJob(request_indices.size())) {
      for (const size_t i : request_indices) {
        state->promises[i].set_value(FailedResponse<Response>(
            Status::Unavailable("request shed: queue past the shed watermark")));
      }
      continue;
    }
    // Captured by copy: the rejection path below still needs the indices.
    const bool accepted =
        pool_.Submit([this, state, indices = request_indices](size_t worker) {
          ReleaseJobSlot();
          // One memo per group: repeated window walks within the group are
          // answered from memory, and the Z-order visit order keeps the
          // worker's buffer pool warm across consecutive queries. The
          // group shares ONE lease — a publish landing mid-group must not
          // let the memo mix window walks from two different epochs.
          const SessionLease lease = AcquireLease();
          WindowQueryMemo memo(config_.window_memo_entries);
          WindowQueryMemo* memo_ptr = config_.window_memo_entries > 0 ? &memo : nullptr;
          for (const size_t i : indices) {
            Execute<Response>(
                worker, state->queries[i], state->options[i], state->timings[i],
                [&state, i](Response response) {
                  state->promises[i].set_value(std::move(response));
                },
                memo_ptr, &lease);
          }
          metrics_.RecordWindowMemoHits(memo.hits());
        });
    if (!accepted) {
      ReleaseJobSlot();
      for (const size_t i : request_indices) {
        state->promises[i].set_value(
            FailedResponse<Response>(Status::FailedPrecondition("query service is shut down")));
      }
    }
  }
  return futures;
}

std::vector<std::future<NwcResponse>> QueryService::SubmitNwcBatch(
    const std::vector<NwcRequest>& requests) {
  return SubmitBatchImpl<NwcResponse>(requests);
}

std::vector<std::future<KnwcResponse>> QueryService::SubmitKnwcBatch(
    const std::vector<KnwcRequest>& requests) {
  return SubmitBatchImpl<KnwcResponse>(requests);
}

MetricsSnapshot QueryService::SnapshotMetrics() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  if (result_cache_ != nullptr) {
    const ResultCache::Stats stats = result_cache_->GetStats();
    snapshot.result_cache_hits = stats.hits;
    snapshot.result_cache_misses = stats.misses;
    snapshot.result_cache_evictions = stats.evictions;
    snapshot.result_cache_entries = stats.entries;
    snapshot.result_cache_bytes = stats.bytes;
  }
  return snapshot;
}

void QueryService::ResetMetrics() {
  metrics_.Reset();
  if (result_cache_ != nullptr) result_cache_->ResetStats();
}

}  // namespace nwc
