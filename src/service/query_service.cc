#include "service/query_service.h"

#include <chrono>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/knwc_engine.h"
#include "core/nwc_engine.h"

namespace nwc {
namespace {

/// Collects every stored object by walking the tree's leaves (structural
/// access, no I/O charged) — the density grid is built from the index
/// itself, so opening a session needs no separate dataset.
std::vector<DataObject> CollectObjects(const RStarTree& tree) {
  std::vector<DataObject> objects;
  objects.reserve(tree.size());
  std::vector<NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const RTreeNode& node = tree.node(stack.back());
    stack.pop_back();
    if (node.is_leaf()) {
      objects.insert(objects.end(), node.objects.begin(), node.objects.end());
    } else {
      for (const ChildEntry& entry : node.children) stack.push_back(entry.child);
    }
  }
  return objects;
}

}  // namespace

Status SessionConfig::Validate() const {
  if (build_grid && !(grid_cell_size > 0.0)) {
    return Status::InvalidArgument("grid_cell_size must be positive");
  }
  return Status::Ok();
}

Status ServiceConfig::Validate() const {
  if (num_threads == 0) return Status::InvalidArgument("num_threads must be >= 1");
  if (queue_capacity == 0) return Status::InvalidArgument("queue_capacity must be >= 1");
  if (trace_slow_queries && trace_ring_capacity == 0) {
    return Status::InvalidArgument("trace_ring_capacity must be >= 1 when tracing is enabled");
  }
  if (shed_queue_depth > queue_capacity) {
    return Status::InvalidArgument("shed_queue_depth cannot exceed queue_capacity");
  }
  if (max_retries < 0) return Status::InvalidArgument("max_retries must be >= 0");
  const Status plan_ok = fault_plan.Validate();
  if (!plan_ok.ok()) return plan_ok;
  return Status::Ok();
}

Result<Session> Session::Open(RStarTree tree, const SessionConfig& config) {
  const Status valid = config.Validate();
  if (!valid.ok()) return valid;

  Session session;
  session.tree_ = std::make_unique<RStarTree>(std::move(tree));
  if (config.build_iwp) {
    session.iwp_ = std::make_unique<IwpIndex>(IwpIndex::Build(*session.tree_));
  }
  if (config.build_grid) {
    Rect space = config.grid_space;
    if (space.IsEmpty()) space = session.tree_->bounds();
    if (space.IsEmpty()) {
      // Empty tree: a 1-cell grid with zero counts keeps DEP sound (it
      // prunes everything, which is the right answer for no data).
      space = Rect{0.0, 0.0, config.grid_cell_size, config.grid_cell_size};
    }
    session.grid_ = std::make_unique<DensityGrid>(space, config.grid_cell_size,
                                                  CollectObjects(*session.tree_));
  }
  return session;
}

QueryService::QueryService(const Session& session, const ServiceConfig& config)
    : session_(session),
      config_(config),
      worker_pools_(config.num_threads == 0 ? 1 : config.num_threads),
      pool_(config.num_threads, config.queue_capacity) {
  if (config_.worker_pool_pages > 0) {
    for (auto& pool : worker_pools_) {
      pool = std::make_unique<BufferPool>(config_.worker_pool_pages);
    }
  }
  if (config_.fault_plan.enabled()) {
    worker_injectors_.resize(worker_pools_.size());
    for (size_t i = 0; i < worker_injectors_.size(); ++i) {
      FaultPlan plan = config_.fault_plan;
      plan.seed += i;  // decorrelate Bernoulli streams across workers
      worker_injectors_[i] = std::make_unique<FaultInjector>(plan);
    }
  }
  if (config_.trace_slow_queries) {
    slow_traces_ = std::make_unique<TraceRing>(config_.trace_ring_capacity);
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

Status QueryService::CheckRequest(const std::optional<NwcOptions>& override_options,
                                  NwcOptions* effective) const {
  *effective = override_options.value_or(config_.default_options);
  if (!session_.Supports(*effective)) {
    return Status::FailedPrecondition(
        "session lacks the IWP index / density grid required by the requested scheme");
  }
  return Status::Ok();
}

QueryService::RequestTiming QueryService::MakeTiming(uint64_t request_deadline_micros) const {
  RequestTiming timing;
  const uint64_t micros =
      request_deadline_micros != 0 ? request_deadline_micros : config_.default_deadline_micros;
  if (micros != 0) {
    timing.has_deadline = true;
    timing.deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(micros);
  }
  timing.epoch = cancel_epoch_.load(std::memory_order_relaxed);
  return timing;
}

namespace {

/// Human-readable query description stamped on retained slow traces.
std::string DescribeQuery(const NwcQuery& query, const NwcOptions& options) {
  std::string scheme;
  if (options.use_srr) scheme += "+srr";
  if (options.use_dip) scheme += "+dip";
  if (options.use_dep) scheme += "+dep";
  if (options.use_iwp) scheme += "+iwp";
  if (scheme.empty()) scheme = "plain"; else scheme.erase(0, 1);
  return StrFormat("nwc q=(%.3f,%.3f) l=%g w=%g n=%zu scheme=%s measure=%s", query.q.x,
                   query.q.y, query.length, query.width, query.n, scheme.c_str(),
                   DistanceMeasureName(options.measure));
}

std::string DescribeQuery(const KnwcQuery& query, const NwcOptions& options) {
  return StrFormat("k%s k=%zu m=%zu", DescribeQuery(query.base, options).c_str(), query.k,
                   query.m);
}

}  // namespace

template <typename Response, typename Query>
void QueryService::Execute(size_t worker_index, const Query& query, const NwcOptions& options,
                           const RequestTiming& timing, std::promise<Response> promise) {
  // Dequeue-time queue-depth observation: the submit-side sample alone
  // under-reports bursts, because submitters that would see the peak are
  // the ones blocked on the full queue.
  metrics_.RecordQueueDepth(pool_.QueueDepth());

  Response response;
  IoCounter total_io;  // merged across attempts for metrics/response
  BufferPool* worker_pool = worker_pools_[worker_index].get();
  FaultInjector* injector =
      worker_injectors_.empty() ? nullptr : worker_injectors_[worker_index].get();

  Stopwatch timer;
  bool found = false;
  int attempt = 0;
  while (true) {
    // Per-attempt state: a fresh counter so a failed attempt's I/O still
    // rolls up, a fresh control so a transient fault doesn't poison the
    // retry, and a fresh trace so the retained trace describes the final
    // attempt. The absolute deadline and cancel epoch from submit time
    // carry across attempts — retries never extend the budget.
    IoCounter io;
    if (worker_pool != nullptr) {
      io.SetCacheProbe([worker_pool](uint32_t page) { return worker_pool->Access(page); });
    }
    QueryTrace trace = slow_traces_ != nullptr ? QueryTrace::Enabled() : QueryTrace();
    QueryTrace* trace_ptr = slow_traces_ != nullptr ? &trace : nullptr;
    QueryControl control;
    if (timing.has_deadline) control.SetDeadline(timing.deadline);
    control.SetCancelCell(&cancel_epoch_, timing.epoch);
    if (injector != nullptr) {
      QueryControl* ctl = &control;
      QueryTrace& tr = trace;
      io.SetReadProbe([injector, ctl, &tr](uint32_t page) {
        Status fault = injector->OnRead(page);
        if (!fault.ok()) {
          tr.Count(TraceCounter::kFaultsInjected);
          ctl->ReportFault(std::move(fault));
        }
      });
    }

    if constexpr (std::is_same_v<Response, NwcResponse>) {
      NwcEngine engine(session_.tree(), session_.iwp(), session_.grid());
      Result<NwcResult> result = engine.Execute(query, options, &io, trace_ptr, &control);
      response.status = result.status();
      if (result.ok()) {
        found = result->found;
        response.result = std::move(result).value();
      }
    } else {
      KnwcEngine engine(session_.tree(), session_.iwp(), session_.grid());
      Result<KnwcResult> result = engine.Execute(query, options, &io, trace_ptr, &control);
      response.status = result.status();
      if (result.ok()) {
        found = !result->groups.empty();
        response.result = std::move(result).value();
      }
    }
    total_io.Add(io);

    // Bounded retry for transient I/O faults — never past the deadline.
    if (response.status.code() == StatusCode::kIoError && attempt < config_.max_retries &&
        !(timing.has_deadline && std::chrono::steady_clock::now() >= timing.deadline)) {
      metrics_.RecordRetry();
      if (config_.retry_backoff_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.retry_backoff_micros << attempt));
      }
      ++attempt;
      continue;
    }

    response.latency_micros = timer.ElapsedMicros();
    response.traversal_reads = total_io.traversal_reads();
    response.window_query_reads = total_io.window_query_reads();
    response.cache_hits = total_io.cache_hits();

    metrics_.RecordQuery(response.latency_micros, total_io, response.status.code(), found);
    if (slow_traces_ != nullptr && response.latency_micros >= config_.slow_trace_us) {
      metrics_.RecordSlowQuery();
      trace.set_label(StrFormat("%s latency_us=%llu", DescribeQuery(query, options).c_str(),
                                static_cast<unsigned long long>(response.latency_micros)));
      slow_traces_->Add(std::move(trace));
    }
    promise.set_value(std::move(response));
    return;
  }
}

namespace {

/// A response that never reached a worker (service-level failure).
template <typename Response>
Response FailedResponse(Status status) {
  Response response;
  response.status = std::move(status);
  return response;
}

}  // namespace

std::future<NwcResponse> QueryService::SubmitNwc(NwcRequest request) {
  auto promise = std::make_shared<std::promise<NwcResponse>>();
  std::future<NwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<NwcResponse>(status));
    return future;
  }
  // Load shedding: past the watermark, failing fast beats blocking the
  // caller on a queue that is already drowning.
  if (config_.shed_queue_depth > 0 && pool_.QueueDepth() >= config_.shed_queue_depth) {
    metrics_.RecordShed();
    promise->set_value(FailedResponse<NwcResponse>(
        Status::Unavailable("request shed: queue past the shed watermark")));
    return future;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  metrics_.RecordQueueDepth(pool_.QueueDepth() + 1);
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        Execute<NwcResponse>(worker, query, options, timing, std::move(*promise));
      });
  if (!accepted) {
    promise->set_value(FailedResponse<NwcResponse>(
        Status::FailedPrecondition("query service is shut down")));
  }
  return future;
}

std::future<KnwcResponse> QueryService::SubmitKnwc(KnwcRequest request) {
  auto promise = std::make_shared<std::promise<KnwcResponse>>();
  std::future<KnwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<KnwcResponse>(status));
    return future;
  }
  if (config_.shed_queue_depth > 0 && pool_.QueueDepth() >= config_.shed_queue_depth) {
    metrics_.RecordShed();
    promise->set_value(FailedResponse<KnwcResponse>(
        Status::Unavailable("request shed: queue past the shed watermark")));
    return future;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  metrics_.RecordQueueDepth(pool_.QueueDepth() + 1);
  const bool accepted = pool_.Submit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        Execute<KnwcResponse>(worker, query, options, timing, std::move(*promise));
      });
  if (!accepted) {
    promise->set_value(FailedResponse<KnwcResponse>(
        Status::FailedPrecondition("query service is shut down")));
  }
  return future;
}

bool QueryService::TrySubmitNwc(NwcRequest request, std::future<NwcResponse>* out) {
  auto promise = std::make_shared<std::promise<NwcResponse>>();
  std::future<NwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<NwcResponse>(status));
    *out = std::move(future);
    return true;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  const bool accepted = pool_.TrySubmit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        Execute<NwcResponse>(worker, query, options, timing, std::move(*promise));
      });
  if (!accepted) {
    metrics_.RecordRejection();
    return false;
  }
  metrics_.RecordQueueDepth(pool_.QueueDepth());
  *out = std::move(future);
  return true;
}

bool QueryService::TrySubmitKnwc(KnwcRequest request, std::future<KnwcResponse>* out) {
  auto promise = std::make_shared<std::promise<KnwcResponse>>();
  std::future<KnwcResponse> future = promise->get_future();
  NwcOptions options;
  const Status status = CheckRequest(request.options, &options);
  if (!status.ok()) {
    promise->set_value(FailedResponse<KnwcResponse>(status));
    *out = std::move(future);
    return true;
  }
  const RequestTiming timing = MakeTiming(request.deadline_micros);
  const bool accepted = pool_.TrySubmit(
      [this, query = request.query, options, timing, promise](size_t worker) mutable {
        Execute<KnwcResponse>(worker, query, options, timing, std::move(*promise));
      });
  if (!accepted) {
    metrics_.RecordRejection();
    return false;
  }
  metrics_.RecordQueueDepth(pool_.QueueDepth());
  *out = std::move(future);
  return true;
}

std::vector<NwcResponse> QueryService::RunNwcBatch(const std::vector<NwcRequest>& requests) {
  std::vector<std::future<NwcResponse>> futures;
  futures.reserve(requests.size());
  for (const NwcRequest& request : requests) futures.push_back(SubmitNwc(request));
  std::vector<NwcResponse> responses;
  responses.reserve(requests.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

std::vector<KnwcResponse> QueryService::RunKnwcBatch(const std::vector<KnwcRequest>& requests) {
  std::vector<std::future<KnwcResponse>> futures;
  futures.reserve(requests.size());
  for (const KnwcRequest& request : requests) futures.push_back(SubmitKnwc(request));
  std::vector<KnwcResponse> responses;
  responses.reserve(requests.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

}  // namespace nwc
