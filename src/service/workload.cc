#include "service/workload.h"

#include <cstdio>
#include <fstream>

#include "common/rng.h"

namespace nwc {

Result<std::vector<WorkloadEntry>> LoadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open query file " + path);
  std::vector<WorkloadEntry> entries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    WorkloadEntry entry;
    double x, y, l, w;
    unsigned long n, k, m;
    int consumed = 0;
    const char* text = line.c_str() + start;
    if (std::sscanf(text, "nwc %lf %lf %lf %lf %lu%n", &x, &y, &l, &w, &n, &consumed) == 5) {
      entry.nwc = NwcQuery{Point{x, y}, l, w, n};
    } else if (std::sscanf(text, "knwc %lf %lf %lf %lf %lu %lu %lu%n", &x, &y, &l, &w, &n, &k, &m,
                           &consumed) == 7) {
      entry.is_knwc = true;
      entry.knwc = KnwcQuery{NwcQuery{Point{x, y}, l, w, n}, k, m};
    } else {
      return Status::InvalidArgument("query file " + path + " line " +
                                     std::to_string(line_no) +
                                     ": expected 'nwc X Y L W N' or 'knwc X Y L W N K M'");
    }
    // Reject trailing junk: 'nwc X Y L W N K M' would otherwise silently
    // drop K and M, serving a different query than the user wrote.
    const std::string rest(text + consumed);
    if (rest.find_first_not_of(" \t\r") != std::string::npos) {
      return Status::InvalidArgument("query file " + path + " line " +
                                     std::to_string(line_no) + ": unexpected trailing '" +
                                     rest.substr(rest.find_first_not_of(" \t\r")) + "'");
    }
    entries.push_back(entry);
  }
  if (entries.empty()) return Status::InvalidArgument("query file " + path + " holds no queries");
  return entries;
}

std::vector<WorkloadEntry> MakeSkewedWorkload(size_t count, uint64_t seed, const Rect& space) {
  Rng rng(seed);
  const double span_x = space.max_x - space.min_x;
  const double span_y = space.max_y - space.min_y;
  // Hotspot: the central 20% of each axis draws 80% of the traffic.
  const double hot_min_x = space.min_x + 0.4 * span_x;
  const double hot_min_y = space.min_y + 0.4 * span_y;
  const double window = 0.01 * (span_x < span_y ? span_y : span_x);

  std::vector<WorkloadEntry> entries;
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Point q;
    if (rng.NextBernoulli(0.8)) {
      q = Point{rng.NextDouble(hot_min_x, hot_min_x + 0.2 * span_x),
                rng.NextDouble(hot_min_y, hot_min_y + 0.2 * span_y)};
    } else {
      q = Point{rng.NextDouble(space.min_x, space.max_x),
                rng.NextDouble(space.min_y, space.max_y)};
    }
    WorkloadEntry entry;
    const NwcQuery base{q, window, window, 4};
    if (i % 8 == 7) {
      entry.is_knwc = true;
      entry.knwc = KnwcQuery{base, 3, 2};
    } else {
      entry.nwc = base;
    }
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace nwc
