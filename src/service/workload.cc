#include "service/workload.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/rng.h"

namespace nwc {

Result<std::vector<WorkloadEntry>> LoadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open query file " + path);
  std::vector<WorkloadEntry> entries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    WorkloadEntry entry;
    double x, y, l, w;
    unsigned long n, k, m;
    int consumed = 0;
    const char* text = line.c_str() + start;
    if (std::sscanf(text, "nwc %lf %lf %lf %lf %lu%n", &x, &y, &l, &w, &n, &consumed) == 5) {
      entry.nwc = NwcQuery{Point{x, y}, l, w, n};
    } else if (std::sscanf(text, "knwc %lf %lf %lf %lf %lu %lu %lu%n", &x, &y, &l, &w, &n, &k, &m,
                           &consumed) == 7) {
      entry.is_knwc = true;
      entry.knwc = KnwcQuery{NwcQuery{Point{x, y}, l, w, n}, k, m};
    } else {
      return Status::InvalidArgument("query file " + path + " line " +
                                     std::to_string(line_no) +
                                     ": expected 'nwc X Y L W N' or 'knwc X Y L W N K M'");
    }
    // Reject trailing junk: 'nwc X Y L W N K M' would otherwise silently
    // drop K and M, serving a different query than the user wrote.
    const std::string rest(text + consumed);
    if (rest.find_first_not_of(" \t\r") != std::string::npos) {
      return Status::InvalidArgument("query file " + path + " line " +
                                     std::to_string(line_no) + ": unexpected trailing '" +
                                     rest.substr(rest.find_first_not_of(" \t\r")) + "'");
    }
    entries.push_back(entry);
  }
  if (entries.empty()) return Status::InvalidArgument("query file " + path + " holds no queries");
  return entries;
}

Status MutationWorkloadConfig::Validate() const {
  if (steps == 0) return Status::InvalidArgument("steps must be >= 1");
  if (!(churn_ratio >= 0.0 && churn_ratio <= 1.0)) {
    return Status::InvalidArgument("churn_ratio must be in [0, 1]");
  }
  if (!(insert_fraction >= 0.0 && insert_fraction <= 1.0)) {
    return Status::InvalidArgument("insert_fraction must be in [0, 1]");
  }
  if (!(knwc_fraction >= 0.0 && knwc_fraction <= 1.0)) {
    return Status::InvalidArgument("knwc_fraction must be in [0, 1]");
  }
  if (space.IsEmpty()) return Status::InvalidArgument("space must be non-empty");
  return Status::Ok();
}

MutationWorkload MakeMutationWorkload(const MutationWorkloadConfig& config) {
  CheckOk(config.Validate(), "MakeMutationWorkload config");
  Rng rng(config.seed);
  const double span_x = config.space.max_x - config.space.min_x;
  const double span_y = config.space.max_y - config.space.min_y;
  const auto random_point = [&] {
    return Point{rng.NextDouble(config.space.min_x, config.space.max_x),
                 rng.NextDouble(config.space.min_y, config.space.max_y)};
  };

  MutationWorkload workload;
  ObjectId next_id = 0;
  // `live` mirrors what a faithful replayer would hold, so generated
  // deletes always name a currently-stored (id, position) pair.
  std::vector<DataObject> live;
  workload.initial.reserve(config.initial_objects);
  for (size_t i = 0; i < config.initial_objects; ++i) {
    const DataObject obj{next_id++, random_point()};
    workload.initial.push_back(obj);
    live.push_back(obj);
  }

  // Exactly llround(steps * churn) mutation slots, shuffled among the
  // queries — an exact count (not per-step Bernoulli) so the churn ratio
  // is a contract tests and the bench gate can rely on.
  const size_t mutation_slots = static_cast<size_t>(
      std::llround(static_cast<double>(config.steps) * config.churn_ratio));
  std::vector<uint8_t> is_mutation(config.steps, 0);
  for (size_t i = 0; i < mutation_slots && i < config.steps; ++i) is_mutation[i] = 1;
  rng.Shuffle(is_mutation);

  workload.steps.reserve(config.steps);
  for (size_t i = 0; i < config.steps; ++i) {
    MutationStep step;
    if (is_mutation[i] != 0) {
      const bool do_insert =
          live.empty() || rng.NextBernoulli(config.insert_fraction);
      if (do_insert) {
        const DataObject obj{next_id++, random_point()};
        step.mutation = Mutation::Insert(obj);
        live.push_back(obj);
      } else {
        const size_t victim = static_cast<size_t>(rng.NextUint64(live.size()));
        step.mutation = Mutation::Delete(live[victim]);
        live[victim] = live.back();
        live.pop_back();
      }
    } else {
      step.is_query = true;
      // Windows span 2–6% of the larger axis: selective but non-trivial
      // against the default densities.
      const double window =
          rng.NextDouble(0.02, 0.06) * (span_x < span_y ? span_y : span_x);
      const size_t n = 2 + static_cast<size_t>(rng.NextUint64(4));  // 2..5
      const NwcQuery base{random_point(), window, window, n};
      if (rng.NextBernoulli(config.knwc_fraction)) {
        step.query.is_knwc = true;
        const size_t k = 2 + static_cast<size_t>(rng.NextUint64(2));  // 2..3
        const size_t m = static_cast<size_t>(rng.NextUint64(n));      // 0..n-1
        step.query.knwc = KnwcQuery{base, k, m};
      } else {
        step.query.nwc = base;
      }
    }
    workload.steps.push_back(step);
  }
  return workload;
}

Result<std::vector<MutationBatch>> LoadMutationFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open mutation file " + path);
  std::vector<MutationBatch> batches;
  MutationBatch current;
  std::string line;
  size_t line_no = 0;
  size_t total = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    const char* text = line.c_str() + start;
    // A `---` separator closes the current batch (empty batches are
    // dropped — they would publish an epoch with no changes).
    if (std::string(text).find_first_not_of("-\r \t") == std::string::npos &&
        text[0] == '-') {
      if (!current.empty()) batches.push_back(std::move(current));
      current.clear();
      continue;
    }
    double x, y;
    unsigned long id;
    int consumed = 0;
    Mutation mutation;
    if (std::sscanf(text, "insert %lu %lf %lf%n", &id, &x, &y, &consumed) == 3) {
      mutation = Mutation::Insert(DataObject{static_cast<ObjectId>(id), Point{x, y}});
    } else if (std::sscanf(text, "delete %lu %lf %lf%n", &id, &x, &y, &consumed) == 3) {
      mutation = Mutation::Delete(DataObject{static_cast<ObjectId>(id), Point{x, y}});
    } else {
      return Status::InvalidArgument("mutation file " + path + " line " +
                                     std::to_string(line_no) +
                                     ": expected 'insert ID X Y', 'delete ID X Y' or '---'");
    }
    const std::string rest(text + consumed);
    if (rest.find_first_not_of(" \t\r") != std::string::npos) {
      return Status::InvalidArgument("mutation file " + path + " line " +
                                     std::to_string(line_no) + ": unexpected trailing '" +
                                     rest.substr(rest.find_first_not_of(" \t\r")) + "'");
    }
    current.push_back(mutation);
    ++total;
  }
  if (!current.empty()) batches.push_back(std::move(current));
  if (total == 0) {
    return Status::InvalidArgument("mutation file " + path + " holds no mutations");
  }
  return batches;
}

Status WriteMutationFile(const std::string& path, const std::vector<MutationBatch>& batches) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open mutation file " + path + " for writing");
  out << "# mutation replay: 'insert ID X Y' / 'delete ID X Y'; '---' ends a batch\n";
  char buffer[128];
  for (const MutationBatch& batch : batches) {
    for (const Mutation& m : batch) {
      std::snprintf(buffer, sizeof(buffer), "%s %lu %.17g %.17g\n",
                    m.kind == Mutation::Kind::kInsert ? "insert" : "delete",
                    static_cast<unsigned long>(m.object.id), m.object.pos.x, m.object.pos.y);
      out << buffer;
    }
    out << "---\n";
  }
  out.flush();
  if (!out) return Status::IoError("failed writing mutation file " + path);
  return Status::Ok();
}

std::vector<WorkloadEntry> MakeSkewedWorkload(size_t count, uint64_t seed, const Rect& space) {
  Rng rng(seed);
  const double span_x = space.max_x - space.min_x;
  const double span_y = space.max_y - space.min_y;
  // Hotspot: the central 20% of each axis draws 80% of the traffic.
  const double hot_min_x = space.min_x + 0.4 * span_x;
  const double hot_min_y = space.min_y + 0.4 * span_y;
  const double window = 0.01 * (span_x < span_y ? span_y : span_x);

  std::vector<WorkloadEntry> entries;
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Point q;
    if (rng.NextBernoulli(0.8)) {
      q = Point{rng.NextDouble(hot_min_x, hot_min_x + 0.2 * span_x),
                rng.NextDouble(hot_min_y, hot_min_y + 0.2 * span_y)};
    } else {
      q = Point{rng.NextDouble(space.min_x, space.max_x),
                rng.NextDouble(space.min_y, space.max_y)};
    }
    WorkloadEntry entry;
    const NwcQuery base{q, window, window, 4};
    if (i % 8 == 7) {
      entry.is_knwc = true;
      entry.knwc = KnwcQuery{base, 3, 2};
    } else {
      entry.nwc = base;
    }
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace nwc
