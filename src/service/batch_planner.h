#ifndef NWC_SERVICE_BATCH_PLANNER_H_
#define NWC_SERVICE_BATCH_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/nwc_types.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace nwc {

/// One request of a batch as the planner sees it: where it probes and
/// which execution options it runs under. The planner never looks at the
/// window extents — grouping is about tree locality, and every query
/// against the same tree shares the same hot upper levels regardless of
/// window size.
struct BatchItem {
  Point q;
  NwcOptions options;
};

/// Z-order (Morton) key of `q` within `space`: each coordinate is
/// normalized to a 16-bit integer grid over the space and the two are
/// bit-interleaved (x in the even bits). Points outside `space` clamp to
/// its boundary; a degenerate (zero-extent) axis maps to 0. Sorting by
/// this key places spatially close query points next to each other, which
/// is what makes consecutive batched queries re-touch the same R*-tree
/// pages in the worker's buffer pool.
uint64_t ZOrderKey(const Point& q, const Rect& space);

/// Partitions `items` (by index) into execution groups:
///
///  1. items with identical options (scheme bits + distance measure) are
///     grouped together — a group runs on one worker sharing one
///     window-query memo, and mixing schemes would interleave unrelated
///     tree access patterns;
///  2. within a group, indices are sorted by ZOrderKey of `q` (ties keep
///     submission order, so planning is deterministic);
///  3. groups longer than `max_group_size` are chunked, so one giant batch
///     still spreads across workers. `max_group_size` 0 means unbounded.
///
/// Every input index appears in exactly one group; groups preserve the
/// first-seen order of their options so planning output is stable.
std::vector<std::vector<size_t>> PlanBatchGroups(const std::vector<BatchItem>& items,
                                                 const Rect& space, size_t max_group_size);

}  // namespace nwc

#endif  // NWC_SERVICE_BATCH_PLANNER_H_
