#include "service/batch_planner.h"

#include <algorithm>
#include <cmath>

namespace nwc {
namespace {

// Spreads the low 16 bits of `v` into the even bit positions.
uint64_t SpreadBits16(uint64_t v) {
  v &= 0xFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

// Normalizes `value` within [lo, hi] onto the 16-bit grid, clamping
// out-of-range and non-finite inputs.
uint64_t GridCoord(double value, double lo, double hi) {
  const double extent = hi - lo;
  if (!(extent > 0.0)) return 0;  // degenerate or inverted axis
  double t = (value - lo) / extent;
  if (!(t > 0.0)) t = 0.0;  // also catches NaN
  if (t > 1.0) t = 1.0;
  return static_cast<uint64_t>(t * 65535.0);
}

uint32_t OptionsSignature(const NwcOptions& options) {
  return static_cast<uint32_t>((options.use_srr ? 1u : 0u) | (options.use_dip ? 2u : 0u) |
                               (options.use_dep ? 4u : 0u) | (options.use_iwp ? 8u : 0u) |
                               (static_cast<uint32_t>(options.measure) << 4));
}

}  // namespace

uint64_t ZOrderKey(const Point& q, const Rect& space) {
  const uint64_t gx = GridCoord(q.x, space.min_x, space.max_x);
  const uint64_t gy = GridCoord(q.y, space.min_y, space.max_y);
  return SpreadBits16(gx) | (SpreadBits16(gy) << 1);
}

std::vector<std::vector<size_t>> PlanBatchGroups(const std::vector<BatchItem>& items,
                                                 const Rect& space, size_t max_group_size) {
  // Bucket indices by options signature, preserving first-seen order.
  std::vector<uint32_t> signatures;
  std::vector<std::vector<size_t>> buckets;
  for (size_t i = 0; i < items.size(); ++i) {
    const uint32_t sig = OptionsSignature(items[i].options);
    size_t bucket = signatures.size();
    for (size_t b = 0; b < signatures.size(); ++b) {
      if (signatures[b] == sig) {
        bucket = b;
        break;
      }
    }
    if (bucket == signatures.size()) {
      signatures.push_back(sig);
      buckets.emplace_back();
    }
    buckets[bucket].push_back(i);
  }

  std::vector<std::vector<size_t>> groups;
  for (auto& bucket : buckets) {
    // stable_sort: equal Z-order keys keep submission order, so the plan
    // is a deterministic function of the input.
    std::stable_sort(bucket.begin(), bucket.end(), [&](size_t a, size_t b) {
      return ZOrderKey(items[a].q, space) < ZOrderKey(items[b].q, space);
    });
    if (max_group_size == 0 || bucket.size() <= max_group_size) {
      groups.push_back(std::move(bucket));
      continue;
    }
    for (size_t start = 0; start < bucket.size(); start += max_group_size) {
      const size_t end = std::min(start + max_group_size, bucket.size());
      groups.emplace_back(bucket.begin() + static_cast<std::ptrdiff_t>(start),
                          bucket.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return groups;
}

}  // namespace nwc
