#include "service/session.h"

#include <memory>
#include <utility>
#include <vector>

#include "rtree/node.h"

namespace nwc {

Status SessionConfig::Validate() const {
  if (build_grid && !(grid_cell_size > 0.0)) {
    return Status::InvalidArgument("grid_cell_size must be positive");
  }
  return Status::Ok();
}

std::vector<DataObject> CollectTreeObjects(const RStarTree& tree) {
  std::vector<DataObject> objects;
  objects.reserve(tree.size());
  std::vector<NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const RTreeNode& node = tree.node(stack.back());
    stack.pop_back();
    if (node.is_leaf()) {
      objects.insert(objects.end(), node.objects.begin(), node.objects.end());
    } else {
      for (const ChildEntry& entry : node.children) stack.push_back(entry.child);
    }
  }
  return objects;
}

Result<Session> Session::Open(RStarTree tree, const SessionConfig& config) {
  const Status valid = config.Validate();
  if (!valid.ok()) return valid;

  Session session;
  session.tree_ = std::make_unique<RStarTree>(std::move(tree));
  if (config.build_iwp) {
    session.iwp_ = std::make_unique<IwpIndex>(IwpIndex::Build(*session.tree_));
  }
  if (config.build_grid) {
    Rect space = config.grid_space;
    if (space.IsEmpty()) space = session.tree_->bounds();
    if (space.IsEmpty()) {
      // Empty tree: a 1-cell grid with zero counts keeps DEP sound (it
      // prunes everything, which is the right answer for no data).
      space = Rect{0.0, 0.0, config.grid_cell_size, config.grid_cell_size};
    }
    session.grid_ = std::make_unique<DensityGrid>(space, config.grid_cell_size,
                                                  CollectTreeObjects(*session.tree_));
  }
  return session;
}

Session Session::FromParts(std::unique_ptr<RStarTree> tree, std::unique_ptr<IwpIndex> iwp,
                           std::unique_ptr<DensityGrid> grid) {
  Session session;
  session.tree_ = std::move(tree);
  session.iwp_ = std::move(iwp);
  session.grid_ = std::move(grid);
  return session;
}

}  // namespace nwc
