#ifndef NWC_SERVICE_THREAD_POOL_H_
#define NWC_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/mpmc_queue.h"

namespace nwc {

/// Fixed-size worker pool over a bounded MpmcQueue of jobs.
///
/// Jobs receive the index of the worker running them (0 .. num_threads-1),
/// which lets callers maintain per-worker state — the query service uses it
/// to give each worker its own BufferPool, since the pool's LRU state must
/// never be shared across threads (see storage/buffer_pool.h).
///
/// Backpressure: Submit() blocks while the queue is full; TrySubmit()
/// returns false instead, so callers can count rejections and shed load.
///
/// Shutdown is graceful: the queue is closed, workers drain every job that
/// was already accepted, then exit. The destructor shuts down implicitly.
///
/// Exception propagation: the library itself reports failures through
/// Status, but a job may still throw (std::bad_alloc, caller bugs). A
/// worker that catches an exception records it and keeps serving; the first
/// recorded exception is available from TakeFirstError() so tests and
/// callers can surface it instead of silently losing a crashed job.
///
/// ThreadSafety: all public members are safe to call from any thread.
class ThreadPool {
 public:
  using Job = std::function<void(size_t worker_index)>;

  /// Starts `num_threads` workers (minimum 1) behind a queue holding at
  /// most `queue_capacity` pending jobs.
  ThreadPool(size_t num_threads, size_t queue_capacity);

  /// Shuts down (draining accepted jobs) if Shutdown() was not called.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job, blocking while the queue is full. Returns false when
  /// the pool has been shut down (the job is dropped).
  bool Submit(Job job);

  /// Non-blocking enqueue. Returns false when the queue is full or the
  /// pool has been shut down; the caller decides how to handle the
  /// rejection.
  bool TrySubmit(Job job);

  /// Closes the queue and joins all workers after they drain the accepted
  /// jobs. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  /// Jobs currently waiting in the queue (instantaneous).
  size_t QueueDepth() const { return queue_.size(); }

  size_t queue_capacity() const { return queue_.capacity(); }

  /// Jobs fully executed so far (monotonic).
  uint64_t jobs_executed() const { return jobs_executed_.load(std::memory_order_relaxed); }

  /// Returns and clears the first exception a job threw, or nullptr when
  /// every job so far completed cleanly.
  std::exception_ptr TakeFirstError();

 private:
  void WorkerLoop(size_t worker_index);

  MpmcQueue<Job> queue_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> jobs_executed_{0};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace nwc

#endif  // NWC_SERVICE_THREAD_POOL_H_
