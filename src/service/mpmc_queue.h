#ifndef NWC_SERVICE_MPMC_QUEUE_H_
#define NWC_SERVICE_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace nwc {

/// Bounded multi-producer / multi-consumer FIFO queue.
///
/// The queue is the backpressure point of the query service: producers
/// either block in Push() until a consumer frees a slot, or use TryPush()
/// and handle the rejection themselves (the service surfaces rejections in
/// its metrics). Closing the queue wakes every blocked producer and
/// consumer; consumers drain the remaining items before Pop() returns
/// false, so no accepted work is dropped by a graceful shutdown.
///
/// ThreadSafety: every member is safe to call concurrently from any number
/// of threads; all state is guarded by one internal mutex. This is a
/// deliberately simple mutex+condvar design — the service's unit of work
/// (an NWC/kNWC query, thousands of node visits) dwarfs queue overhead, so
/// a lock-free ring would add complexity without measurable throughput.
template <typename T>
class MpmcQueue {
 public:
  /// A queue holding at most `capacity` items (capacity >= 1 enforced).
  explicit MpmcQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until a slot is free, then enqueues. Returns false (dropping
  /// `value`) when the queue is or becomes closed while waiting.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue. Returns false when the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available and dequeues it into `out`.
  /// Returns false only when the queue is closed *and* drained.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: subsequent pushes fail, blocked producers and
  /// consumers wake up, consumers drain what was already accepted.
  ///
  /// Shutdown-under-saturation audit (no lost wakeup): producers blocked
  /// in Push() wait on the predicate `closed_ || size < capacity`, and
  /// Close() flips `closed_` *under the same mutex* before notify_all on
  /// both condvars — so a producer cannot check the predicate, miss the
  /// close, and then sleep through the notification (the store and the
  /// wait are serialized by mu_). Every blocked producer therefore wakes,
  /// re-evaluates, and returns false. The related benign case: Pop()'s
  /// not_full_.notify_one can be "stolen" when a TryPush grabs the freed
  /// slot before the woken producer reacquires the lock; the producer
  /// re-checks the predicate and re-waits, and the next Pop (or Close)
  /// notifies again, so progress is never lost. Regression coverage:
  /// MpmcQueueTest.CloseWakesProducersBlockedOnSaturatedQueue.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Items currently queued (instantaneous; for metrics/gauges).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace nwc

#endif  // NWC_SERVICE_MPMC_QUEUE_H_
