#ifndef NWC_SERVICE_LATENCY_HISTOGRAM_H_
#define NWC_SERVICE_LATENCY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nwc {

/// Fixed-memory log-linear histogram for latency values (microseconds).
///
/// Values 0..63 are recorded exactly; above that each power-of-two range
/// is divided into 32 sub-buckets, bounding the relative quantile error at
/// 1/32 (~3%) regardless of magnitude — the HdrHistogram layout at low
/// precision. Recording is O(1) with no allocation after construction, so
/// a per-query Record() never perturbs the latency it measures.
///
/// ThreadSafety: NOT thread-safe; ServiceMetrics serializes access behind
/// its mutex (a query's work is thousands of node visits, so one
/// uncontended lock per query is noise).
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one value (microseconds, by service convention).
  void Record(uint64_t value);

  /// Merges another histogram into this one (counts add bucket-wise).
  void Merge(const LatencyHistogram& other);

  /// The value at quantile `q` in [0, 1]: an upper bound of the bucket
  /// containing the q-th sample, so Quantile(0.5) >= the true median by at
  /// most one bucket width. Returns 0 when empty.
  uint64_t Quantile(double q) const;

  /// Number of recorded values.
  uint64_t count() const { return count_; }

  /// Smallest / largest recorded value (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// Exact sum of every recorded value (pairs with count() for Prometheus
  /// histogram exposition).
  uint64_t sum() const { return sum_; }

  /// Exact running mean (the sum is kept outside the buckets).
  double Mean() const;

  /// One bucket of the layout: all recorded values v with
  /// bucket(i-1).upper_bound < v <= upper_bound land in count.
  struct Bucket {
    uint64_t upper_bound = 0;  ///< inclusive upper bound of the bucket
    uint64_t count = 0;
  };

  /// Number of buckets in the (fixed) layout.
  size_t num_buckets() const { return buckets_.size(); }

  /// The i-th bucket, ascending by upper bound. Exposed so exporters (the
  /// Prometheus text format needs cumulative `le` buckets) can walk the raw
  /// distribution instead of settling for three pre-picked quantiles.
  Bucket bucket(size_t i) const { return Bucket{BucketUpperBound(i), buckets_[i]}; }

  /// Clears every bucket and the summary stats.
  void Reset();

 private:
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace nwc

#endif  // NWC_SERVICE_LATENCY_HISTOGRAM_H_
