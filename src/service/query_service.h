#ifndef NWC_SERVICE_QUERY_SERVICE_H_
#define NWC_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/nwc_types.h"
#include "grid/density_grid.h"
#include "obs/query_trace.h"
#include "obs/trace_ring.h"
#include "rtree/iwp_index.h"
#include "rtree/queries.h"
#include "rtree/rstar_tree.h"
#include "service/query_backend.h"
#include "service/result_cache.h"
#include "service/service_metrics.h"
#include "service/session.h"
#include "service/snapshot.h"
#include "service/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"

namespace nwc {

/// Ceiling on a single retry-backoff sleep (1 s). Exponential backoff that
/// doubles without a cap shifts past the value's width within 64 attempts
/// and overflows into arbitrary (including zero or enormous) sleeps; every
/// computed backoff saturates here instead.
inline constexpr uint64_t kMaxRetryBackoffMicros = 1'000'000;

/// The exponential retry backoff for `attempt` (0-based): base * 2^attempt,
/// saturated at kMaxRetryBackoffMicros. Overflow-safe for any base and any
/// attempt count — `base << attempt` is never evaluated when the shift
/// would exceed the cap (the old unclamped shift was undefined behavior
/// past 63 bits and wrapped to a bogus sleep well before that).
uint64_t RetryBackoffMicros(uint64_t base_micros, int attempt);

/// Sizing and defaults for a QueryService.
struct ServiceConfig {
  size_t num_threads = 4;      ///< worker threads sharing the session
  size_t queue_capacity = 256; ///< bounded job queue (backpressure point)
  /// Options applied when a request carries no override.
  NwcOptions default_options = NwcOptions::Star();
  /// Pages per *per-worker* LRU buffer pool; 0 disables pooling and
  /// reproduces the paper's bufferless metric. Pools are strictly
  /// per-worker — BufferPool's LRU state must never be shared across
  /// threads (see storage/buffer_pool.h).
  size_t worker_pool_pages = 0;

  /// Master switch for per-query tracing. When true, every worker records
  /// its query into a QueryTrace (per-query recorder, never shared), and
  /// queries whose wall latency reaches slow_trace_us are retained in the
  /// service's bounded trace ring for post-hoc inspection. When false (the
  /// default), engines run against the null recorder — one branch per
  /// record site, nothing else.
  bool trace_slow_queries = false;
  /// Latency threshold (microseconds) for retaining a trace; 0 retains
  /// every traced query (useful for short diagnostic runs).
  uint64_t slow_trace_us = 0;
  /// Capacity of the slow-trace ring (oldest evicted first).
  size_t trace_ring_capacity = 32;

  /// Deadline applied to requests that carry none, measured from *submit*
  /// time so queue wait counts against it; 0 means no default deadline.
  uint64_t default_deadline_micros = 0;
  /// Load shedding: blocking submits observing a queue at or past this
  /// depth fail immediately with Unavailable instead of blocking (the
  /// non-blocking TrySubmits already fail fast at full capacity); 0
  /// disables shedding.
  size_t shed_queue_depth = 0;
  /// Transient-fault handling: a query failing with IoError is re-executed
  /// up to this many extra times (exponential backoff below) before the
  /// error is surfaced. 0 disables retry.
  int max_retries = 0;
  /// Backoff before the first retry; doubles per attempt.
  uint64_t retry_backoff_micros = 100;
  /// Deterministic fault-injection schedule (tests / resilience drills):
  /// each worker gets a private FaultInjector running this plan (Bernoulli
  /// seeds are decorrelated per worker by adding the worker index). The
  /// default (kNone) leaves the read path untouched.
  FaultPlan fault_plan = FaultPlan::None();

  /// Byte budget of the sharded result cache serving exact repeat queries;
  /// 0 (the default) runs uncached. Only OK responses are ever inserted.
  size_t result_cache_bytes = 0;
  /// Shard count of the result cache (>= 1); more shards cut lock
  /// contention between workers hitting the cache concurrently.
  size_t result_cache_shards = 8;
  /// Largest number of requests a SubmitNwcBatch/SubmitKnwcBatch group
  /// executes on one worker (0 = unbounded). Smaller groups spread a batch
  /// across workers; larger groups share more window-query memo state.
  size_t batch_group_size = 16;
  /// Entry bound of the per-group window-query memo used by the batch
  /// APIs; 0 disables memoization within batches.
  size_t window_memo_entries = 4096;

  Status Validate() const;
};

// NwcRequest / KnwcRequest / NwcResponse / KnwcResponse / UpdateResponse /
// AsyncTiming live in service/query_backend.h (re-exported here): they are
// the vocabulary of the QueryBackend interface this service implements.

/// Concurrent query execution over an immutable index stack.
///
/// Two modes share one implementation:
///  * **static** — bound to one immutable Session for its whole lifetime
///    (the paper's setting; ApplyUpdate is rejected);
///  * **dynamic** — bound to a SnapshotStore; every query pins the
///    currently-published snapshot (and its epoch) for exactly its own
///    execution, and ApplyUpdate() applies a MutationBatch and publishes
///    the next epoch while in-flight readers keep serving the old one.
///
/// The service owns a fixed ThreadPool; each worker runs queries against
/// the shared read-only index stack with strictly per-query mutable state
/// (IoCounter, engine locals) plus an optional per-worker BufferPool, so
/// execution is concurrency-correct by construction. Results come back
/// through std::future; rejected TrySubmits and per-query latency/I/O are
/// visible in metrics().
///
/// Snapshots published within the IWP staleness bound carry no IWP; the
/// service silently degrades a use_iwp request to its SRR+DIP(+DEP)
/// remainder for that query. The *effective* options key the result cache,
/// so degraded and full answers never mix.
///
/// Shutdown (or destruction) drains accepted requests before returning,
/// so every future obtained from a successful submit becomes ready.
///
/// ThreadSafety: Submit/TrySubmit/RunBatch, ApplyUpdate and the metrics
/// accessors may be called from any thread. The Session / SnapshotStore
/// must outlive the service.
class QueryService : public QueryBackend {
 public:
  /// Binds to `session` (not owned, must outlive the service) and starts
  /// the workers. `config` must already be validated.
  QueryService(const Session& session, const ServiceConfig& config);

  /// Dynamic mode: binds to `store` (not owned, must outlive the service).
  /// Each query acquires the store's current snapshot; ApplyUpdate becomes
  /// functional.
  QueryService(SnapshotStore& store, const ServiceConfig& config);

  ~QueryService() override;

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a request, blocking while the queue is full. The future is
  /// always valid; a service-level failure (shutdown, unsupported scheme)
  /// surfaces as a non-OK response status.
  std::future<NwcResponse> SubmitNwc(NwcRequest request);
  std::future<KnwcResponse> SubmitKnwc(KnwcRequest request);

  /// Non-blocking submit. Returns false — and counts a rejection in the
  /// metrics — when the queue is full; `out` is untouched in that case.
  bool TrySubmitNwc(NwcRequest request, std::future<NwcResponse>* out);
  bool TrySubmitKnwc(KnwcRequest request, std::future<KnwcResponse>* out);

  /// Callback-based submit for event-loop callers (the network layer):
  /// `done` is invoked exactly once with the response — on a worker thread
  /// on the normal path, or synchronously inside this call when the
  /// request is invalid, shed past the watermark, or the service is shut
  /// down. Shed/shutdown outcomes arrive as typed Unavailable /
  /// FailedPrecondition response statuses, same as SubmitNwc. `done` must
  /// tolerate being called from any of those contexts.
  void SubmitNwcAsync(NwcRequest request, std::function<void(NwcResponse)> done) override;
  void SubmitKnwcAsync(KnwcRequest request, std::function<void(KnwcResponse)> done) override;

  /// Worker-side timestamps of one traced async request (namespace-scope
  /// type from query_backend.h; the alias keeps QueryService::AsyncTiming
  /// spelling working for existing callers).
  using AsyncTiming = nwc::AsyncTiming;

  /// Traced variants of the async submits for the serving layer: `done`
  /// additionally receives the request's worker-side timestamps. The
  /// stamps are three SteadyNowMicros() reads — deliberately NOT a full
  /// QueryTrace, whose per-span recording costs real throughput; deep
  /// span traces remain the slow-query machinery's job (trace_slow_queries
  /// arms every query, traced or not). Untraced requests keep the
  /// null-recorder path — one branch per record site.
  void SubmitNwcAsyncTraced(
      NwcRequest request, std::function<void(NwcResponse, const AsyncTiming&)> done) override;
  void SubmitKnwcAsyncTraced(
      KnwcRequest request, std::function<void(KnwcResponse, const AsyncTiming&)> done) override;

  /// Jobs queued but not yet picked up by a worker (approximate — for
  /// monitoring and external admission control).
  size_t QueueDepth() const { return pool_.QueueDepth(); }

  /// Convenience: submits every request (blocking on backpressure) and
  /// waits for all responses, returned in request order.
  std::vector<NwcResponse> RunNwcBatch(const std::vector<NwcRequest>& requests);
  std::vector<KnwcResponse> RunKnwcBatch(const std::vector<KnwcRequest>& requests);

  /// Batched submission: plans the requests into locality groups — equal
  /// effective options together, sorted by Z-order of the query point,
  /// chunked to config().batch_group_size — and runs each group as ONE
  /// worker job sharing a window-query memo, so nearby queries reuse both
  /// buffer-pool pages and completed window walks. Returns one future per
  /// request, index-aligned with `requests`; every future is valid.
  ///
  /// Semantics match SubmitNwc per request: deadlines are measured from
  /// this call (queue wait and any earlier group members count against
  /// them), CancelAll reaches queued groups, and results are bit-identical
  /// to individual submission. Groups are admitted against the same shed
  /// watermark as the single-request submits: a group arriving past the
  /// watermark fails its requests with typed Unavailable responses and
  /// counts one shed PER REQUEST (not per job), so nwc_requests_shed_total
  /// means the same thing under batched and per-query load. Admitted
  /// groups still block on queue backpressure.
  std::vector<std::future<NwcResponse>> SubmitNwcBatch(const std::vector<NwcRequest>& requests);
  std::vector<std::future<KnwcResponse>> SubmitKnwcBatch(const std::vector<KnwcRequest>& requests);

  /// Applies `mutations` to the backing SnapshotStore and publishes the
  /// next epoch (synchronously — callers wanting async apply wrap it in
  /// their own executor; the serving layer applies inline in its event
  /// loop, which also serializes updates arriving on one connection).
  /// Invalidate and publish are coupled here: after this returns, no
  /// future query can observe a pre-publish cached answer — epoch-keyed
  /// cache entries make that structural, and the generation bump lets the
  /// cache reclaim the dead epoch's entries lazily. On a static service,
  /// returns FailedPrecondition and changes nothing.
  UpdateResponse ApplyUpdate(const MutationBatch& mutations) override;

  /// True when this service was constructed over a SnapshotStore.
  bool is_dynamic() const { return store_ != nullptr; }

  /// Cancels every request currently queued or executing: each observes
  /// the epoch bump at its next checkpoint and completes with a Cancelled
  /// response (queued requests cancel when a worker picks them up — no
  /// future is ever abandoned). Requests submitted *after* this call run
  /// normally.
  void CancelAll() { cancel_epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Aggregated per-query metrics since construction / the last reset,
  /// with the result-cache counters/gauges overlaid from the cache itself.
  MetricsSnapshot SnapshotMetrics() const override;
  void ResetMetrics();

  /// The result cache, or nullptr when result_cache_bytes == 0.
  const ResultCache* result_cache() const { return result_cache_.get(); }

  /// Invalidates every cached result (generation bump). Call when the
  /// backing Session is being swapped for one over different data.
  void InvalidateResultCache() {
    if (result_cache_ != nullptr) result_cache_->Invalidate();
  }

  /// Copy of the raw latency histogram (bucket-level export; see
  /// obs/prometheus.h).
  LatencyHistogram SnapshotLatencyHistogram() const override { return metrics_.LatencySnapshot(); }

  /// Traces retained by the slow-query machinery, oldest first (empty when
  /// config().trace_slow_queries is false).
  std::vector<std::shared_ptr<const QueryTrace>> SlowTraces() const override {
    return slow_traces_ == nullptr
               ? std::vector<std::shared_ptr<const QueryTrace>>{}
               : slow_traces_->Snapshot();
  }

  /// Drains accepted requests and stops the workers. Idempotent; called
  /// by the destructor. Submits after shutdown fail with
  /// FailedPrecondition responses.
  void Shutdown();

  size_t num_workers() const { return pool_.num_threads(); }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Deadline and cancel context captured at submit time, so queue wait
  /// counts against the deadline and CancelAll reaches queued requests.
  struct RequestTiming {
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    uint64_t epoch = 0;
  };

  /// The index stack one query (or one batch group) runs against. In
  /// static mode `session` points at the bound Session and `snapshot` is
  /// empty; in dynamic mode `snapshot` pins a published epoch for the
  /// lease's lifetime and `epoch` keys the result cache. One lease spans a
  /// whole batch group so its shared window memo never mixes epochs.
  struct SessionLease {
    std::shared_ptr<const Session> snapshot;
    const Session* session = nullptr;
    uint64_t epoch = 0;
  };

  /// Pins the current snapshot (dynamic) or the bound session (static).
  SessionLease AcquireLease() const;

  /// Common constructor behind the two public modes.
  QueryService(const Session* session, SnapshotStore* store, const ServiceConfig& config);

  /// Drops techniques the leased snapshot cannot serve — today only
  /// use_iwp, when the snapshot was published inside the IWP staleness
  /// bound. The result stays bit-exact for the *effective* scheme, which
  /// is also what keys the result cache.
  static NwcOptions EffectiveOptions(const SessionLease& lease, const NwcOptions& options) {
    NwcOptions effective = options;
    if (effective.use_iwp && lease.session->iwp() == nullptr) effective.use_iwp = false;
    return effective;
  }

  /// Resolves the effective options and checks the session supports them.
  Status CheckRequest(const std::optional<NwcOptions>& override_options,
                      NwcOptions* effective) const;

  /// Captures the request's absolute deadline (request override or service
  /// default) and the current cancel epoch.
  RequestTiming MakeTiming(uint64_t request_deadline_micros) const;

  /// Atomic shed admission for one pool job carrying `request_count`
  /// requests. The admitted-job counter (jobs accepted but not yet picked
  /// up by a worker) is compared against the shed watermark and
  /// incremented in ONE compare-exchange, so concurrent submitters cannot
  /// all pass a stale check and overshoot the watermark — the race the old
  /// copy-pasted `QueueDepth() >= shed_queue_depth` checks had. On
  /// admission the post-increment depth is recorded as the queue-depth
  /// sample (the old code re-read QueueDepth() and added 1, double-counting
  /// racing submitters). On shed, records `request_count` sheds (per
  /// request, not per job) and returns false.
  bool AdmitJob(size_t request_count);

  /// Reverts AdmitJob's slot: called by the worker the moment it picks the
  /// job up, and by submit paths unwinding a job the pool refused. Every
  /// admitted job releases exactly once.
  void ReleaseJobSlot() { admitted_depth_.fetch_sub(1, std::memory_order_relaxed); }

  /// Bypass used by paths that never shed (TrySubmit has its own fast-fail
  /// at queue capacity): takes a slot unconditionally so the admitted-job
  /// counter keeps covering ALL queued jobs and the watermark stays
  /// meaningful under mixed traffic.
  void TakeJobSlot() { admitted_depth_.fetch_add(1, std::memory_order_relaxed); }

  /// Runs one query on a worker: binds the per-worker pool and fault
  /// injector (if any) to a fresh IoCounter, arms a QueryControl from
  /// `timing`, probes the result cache (deadline/cancel checked first, so
  /// an expired request is never served from cache), executes on a miss —
  /// retrying transient I/O faults per the config — and fills the response
  /// fields common to both query kinds. Only OK responses populate the
  /// cache. `done` receives the finished response exactly once (promise
  /// fulfilment or the network layer's completion callback). `memo`
  /// (batch path) shares window walks within a group.
  template <typename Response, typename Query, typename Done>
  void Execute(size_t worker_index, const Query& query, const NwcOptions& options,
               const RequestTiming& timing, Done done, WindowQueryMemo* memo = nullptr,
               const SessionLease* lease = nullptr);

  /// Shared implementation of SubmitNwcBatch/SubmitKnwcBatch.
  template <typename Response, typename Request>
  std::vector<std::future<Response>> SubmitBatchImpl(const std::vector<Request>& requests);

  // Exactly one of the two is set: the static session, or the snapshot
  // store queries acquire epochs from.
  const Session* static_session_ = nullptr;
  SnapshotStore* store_ = nullptr;
  ServiceConfig config_;
  ServiceMetrics metrics_;
  // One pool per worker, indexed by the worker id ThreadPool hands to each
  // job; never shared across threads (empty when worker_pool_pages == 0).
  std::vector<std::unique_ptr<BufferPool>> worker_pools_;
  // One fault injector per worker (empty when fault_plan is kNone);
  // per-worker for the same reason as the buffer pools.
  std::vector<std::unique_ptr<FaultInjector>> worker_injectors_;
  // Slow-query traces (null when tracing is off).
  std::unique_ptr<TraceRing> slow_traces_;
  // Sharded result cache (null when result_cache_bytes == 0). Shared by
  // all workers; ResultCache is internally synchronized.
  std::unique_ptr<ResultCache> result_cache_;
  // CancelAll's epoch cell: requests capture the value at submit and stop
  // once it moves on.
  std::atomic<uint64_t> cancel_epoch_{0};
  // Jobs admitted to the pool queue and not yet picked up by a worker —
  // the shed watermark's authoritative depth. Kept >= the instantaneous
  // queue length (a job leaves the queue before its worker releases the
  // slot), so admission against it is conservative: with shedding enabled,
  // blocking-submit traffic can never push the queue past the watermark.
  std::atomic<size_t> admitted_depth_{0};
  ThreadPool pool_;
};

}  // namespace nwc

#endif  // NWC_SERVICE_QUERY_SERVICE_H_
