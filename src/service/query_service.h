#ifndef NWC_SERVICE_QUERY_SERVICE_H_
#define NWC_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/nwc_types.h"
#include "grid/density_grid.h"
#include "obs/query_trace.h"
#include "obs/trace_ring.h"
#include "rtree/iwp_index.h"
#include "rtree/rstar_tree.h"
#include "service/service_metrics.h"
#include "service/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injector.h"

namespace nwc {

/// What auxiliary structures a Session builds next to the tree. The
/// defaults cover NWC* (every optimization available); disable structures
/// the deployed option presets never use to save build time and memory.
struct SessionConfig {
  bool build_iwp = true;      ///< IWP pointer tables (needed by use_iwp)
  bool build_grid = true;     ///< density grid (needed by use_dep)
  double grid_cell_size = 25.0;  ///< cell side for the density grid
  /// Grid data space; an empty rect means "the tree's bounds". Pass the
  /// normalized space when queries may fall outside the data bounds.
  Rect grid_space = Rect::Empty();

  Status Validate() const;
};

/// An immutable, shareable snapshot of the index stack: the R*-tree plus
/// the optional IWP augmentation and density grid built over it.
///
/// A Session is the unit the service shares across worker threads: after
/// Open() returns, nothing in it ever mutates, so any number of concurrent
/// readers is safe (see the ThreadSafety notes on RStarTree, IwpIndex and
/// DensityGrid). Mutating the tree requires opening a new Session — the
/// paper's setting is static data, and the service inherits it.
class Session {
 public:
  /// Takes ownership of `tree` and builds the configured auxiliary
  /// structures (grid objects are collected from the tree's own leaves, so
  /// no separate dataset is needed). Returns InvalidArgument for a bad
  /// config.
  static Result<Session> Open(RStarTree tree, const SessionConfig& config = SessionConfig());

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const RStarTree& tree() const { return *tree_; }
  /// nullptr when the session was opened without IWP.
  const IwpIndex* iwp() const { return iwp_.get(); }
  /// nullptr when the session was opened without the grid.
  const DensityGrid* grid() const { return grid_.get(); }

  /// True when every structure the preset's techniques need is present.
  bool Supports(const NwcOptions& options) const {
    return (!options.use_iwp || iwp_ != nullptr) && (!options.use_dep || grid_ != nullptr);
  }

 private:
  Session() = default;

  // unique_ptrs keep Session movable while workers hold stable references.
  std::unique_ptr<RStarTree> tree_;
  std::unique_ptr<IwpIndex> iwp_;
  std::unique_ptr<DensityGrid> grid_;
};

/// Sizing and defaults for a QueryService.
struct ServiceConfig {
  size_t num_threads = 4;      ///< worker threads sharing the session
  size_t queue_capacity = 256; ///< bounded job queue (backpressure point)
  /// Options applied when a request carries no override.
  NwcOptions default_options = NwcOptions::Star();
  /// Pages per *per-worker* LRU buffer pool; 0 disables pooling and
  /// reproduces the paper's bufferless metric. Pools are strictly
  /// per-worker — BufferPool's LRU state must never be shared across
  /// threads (see storage/buffer_pool.h).
  size_t worker_pool_pages = 0;

  /// Master switch for per-query tracing. When true, every worker records
  /// its query into a QueryTrace (per-query recorder, never shared), and
  /// queries whose wall latency reaches slow_trace_us are retained in the
  /// service's bounded trace ring for post-hoc inspection. When false (the
  /// default), engines run against the null recorder — one branch per
  /// record site, nothing else.
  bool trace_slow_queries = false;
  /// Latency threshold (microseconds) for retaining a trace; 0 retains
  /// every traced query (useful for short diagnostic runs).
  uint64_t slow_trace_us = 0;
  /// Capacity of the slow-trace ring (oldest evicted first).
  size_t trace_ring_capacity = 32;

  /// Deadline applied to requests that carry none, measured from *submit*
  /// time so queue wait counts against it; 0 means no default deadline.
  uint64_t default_deadline_micros = 0;
  /// Load shedding: blocking submits observing a queue at or past this
  /// depth fail immediately with Unavailable instead of blocking (the
  /// non-blocking TrySubmits already fail fast at full capacity); 0
  /// disables shedding.
  size_t shed_queue_depth = 0;
  /// Transient-fault handling: a query failing with IoError is re-executed
  /// up to this many extra times (exponential backoff below) before the
  /// error is surfaced. 0 disables retry.
  int max_retries = 0;
  /// Backoff before the first retry; doubles per attempt.
  uint64_t retry_backoff_micros = 100;
  /// Deterministic fault-injection schedule (tests / resilience drills):
  /// each worker gets a private FaultInjector running this plan (Bernoulli
  /// seeds are decorrelated per worker by adding the worker index). The
  /// default (kNone) leaves the read path untouched.
  FaultPlan fault_plan = FaultPlan::None();

  Status Validate() const;
};

/// One NWC request: the query plus an optional per-request option
/// override (scheme + measure); absent means the service default.
/// `deadline_micros` bounds the request's total time from submit (queue
/// wait included); 0 applies the service's default_deadline_micros.
struct NwcRequest {
  NwcQuery query;
  std::optional<NwcOptions> options;
  uint64_t deadline_micros = 0;
};

/// One kNWC request; see NwcRequest.
struct KnwcRequest {
  KnwcQuery query;
  std::optional<NwcOptions> options;
  uint64_t deadline_micros = 0;
};

/// Outcome of one NWC request. `result` is meaningful only when
/// status.ok(); `io` is the query's private counter (also merged into the
/// service metrics), `latency_micros` the wall time inside the worker.
struct NwcResponse {
  Status status;
  NwcResult result;
  uint64_t latency_micros = 0;
  uint64_t traversal_reads = 0;
  uint64_t window_query_reads = 0;
  uint64_t cache_hits = 0;
};

/// Outcome of one kNWC request; see NwcResponse.
struct KnwcResponse {
  Status status;
  KnwcResult result;
  uint64_t latency_micros = 0;
  uint64_t traversal_reads = 0;
  uint64_t window_query_reads = 0;
  uint64_t cache_hits = 0;
};

/// Concurrent query execution over one immutable Session.
///
/// The service owns a fixed ThreadPool; each worker runs queries against
/// the shared read-only index stack with strictly per-query mutable state
/// (IoCounter, engine locals) plus an optional per-worker BufferPool, so
/// execution is concurrency-correct by construction. Results come back
/// through std::future; rejected TrySubmits and per-query latency/I/O are
/// visible in metrics().
///
/// Shutdown (or destruction) drains accepted requests before returning,
/// so every future obtained from a successful submit becomes ready.
///
/// ThreadSafety: Submit/TrySubmit/RunBatch and the metrics accessors may
/// be called from any thread. The Session must outlive the service.
class QueryService {
 public:
  /// Binds to `session` (not owned, must outlive the service) and starts
  /// the workers. `config` must already be validated.
  QueryService(const Session& session, const ServiceConfig& config);

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a request, blocking while the queue is full. The future is
  /// always valid; a service-level failure (shutdown, unsupported scheme)
  /// surfaces as a non-OK response status.
  std::future<NwcResponse> SubmitNwc(NwcRequest request);
  std::future<KnwcResponse> SubmitKnwc(KnwcRequest request);

  /// Non-blocking submit. Returns false — and counts a rejection in the
  /// metrics — when the queue is full; `out` is untouched in that case.
  bool TrySubmitNwc(NwcRequest request, std::future<NwcResponse>* out);
  bool TrySubmitKnwc(KnwcRequest request, std::future<KnwcResponse>* out);

  /// Convenience: submits every request (blocking on backpressure) and
  /// waits for all responses, returned in request order.
  std::vector<NwcResponse> RunNwcBatch(const std::vector<NwcRequest>& requests);
  std::vector<KnwcResponse> RunKnwcBatch(const std::vector<KnwcRequest>& requests);

  /// Cancels every request currently queued or executing: each observes
  /// the epoch bump at its next checkpoint and completes with a Cancelled
  /// response (queued requests cancel when a worker picks them up — no
  /// future is ever abandoned). Requests submitted *after* this call run
  /// normally.
  void CancelAll() { cancel_epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Aggregated per-query metrics since construction / the last reset.
  MetricsSnapshot SnapshotMetrics() const { return metrics_.Snapshot(); }
  void ResetMetrics() { metrics_.Reset(); }

  /// Copy of the raw latency histogram (bucket-level export; see
  /// obs/prometheus.h).
  LatencyHistogram SnapshotLatencyHistogram() const { return metrics_.LatencySnapshot(); }

  /// Traces retained by the slow-query machinery, oldest first (empty when
  /// config().trace_slow_queries is false).
  std::vector<std::shared_ptr<const QueryTrace>> SlowTraces() const {
    return slow_traces_ == nullptr
               ? std::vector<std::shared_ptr<const QueryTrace>>{}
               : slow_traces_->Snapshot();
  }

  /// Drains accepted requests and stops the workers. Idempotent; called
  /// by the destructor. Submits after shutdown fail with
  /// FailedPrecondition responses.
  void Shutdown();

  size_t num_workers() const { return pool_.num_threads(); }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Deadline and cancel context captured at submit time, so queue wait
  /// counts against the deadline and CancelAll reaches queued requests.
  struct RequestTiming {
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    uint64_t epoch = 0;
  };

  /// Resolves the effective options and checks the session supports them.
  Status CheckRequest(const std::optional<NwcOptions>& override_options,
                      NwcOptions* effective) const;

  /// Captures the request's absolute deadline (request override or service
  /// default) and the current cancel epoch.
  RequestTiming MakeTiming(uint64_t request_deadline_micros) const;

  /// Runs one query on a worker: binds the per-worker pool and fault
  /// injector (if any) to a fresh IoCounter, arms a QueryControl from
  /// `timing`, executes — retrying transient I/O faults per the config —
  /// and fills the response fields common to both query kinds.
  template <typename Response, typename Query>
  void Execute(size_t worker_index, const Query& query, const NwcOptions& options,
               const RequestTiming& timing, std::promise<Response> promise);

  const Session& session_;
  ServiceConfig config_;
  ServiceMetrics metrics_;
  // One pool per worker, indexed by the worker id ThreadPool hands to each
  // job; never shared across threads (empty when worker_pool_pages == 0).
  std::vector<std::unique_ptr<BufferPool>> worker_pools_;
  // One fault injector per worker (empty when fault_plan is kNone);
  // per-worker for the same reason as the buffer pools.
  std::vector<std::unique_ptr<FaultInjector>> worker_injectors_;
  // Slow-query traces (null when tracing is off).
  std::unique_ptr<TraceRing> slow_traces_;
  // CancelAll's epoch cell: requests capture the value at submit and stop
  // once it moves on.
  std::atomic<uint64_t> cancel_epoch_{0};
  ThreadPool pool_;
};

}  // namespace nwc

#endif  // NWC_SERVICE_QUERY_SERVICE_H_
