#include "service/snapshot.h"

#include <memory>
#include <mutex>
#include <utility>

#include "common/string_util.h"

namespace nwc {

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(RStarTree tree, const Config& config) {
  const Status valid = config.Validate();
  if (!valid.ok()) return valid;

  std::unique_ptr<SnapshotStore> store(new SnapshotStore(config));
  store->writer_tree_ = std::make_unique<RStarTree>(std::move(tree));
  if (config.session.build_grid) {
    Rect space = config.session.grid_space;
    if (space.IsEmpty()) space = store->writer_tree_->bounds();
    if (space.IsEmpty()) {
      // Empty tree: a 1-cell grid with zero counts keeps DEP sound until
      // the first inserts land (they clamp into the single cell).
      space = Rect{0.0, 0.0, config.session.grid_cell_size, config.session.grid_cell_size};
    }
    store->writer_grid_ = std::make_unique<DensityGrid>(space, config.session.grid_cell_size,
                                                        CollectTreeObjects(*store->writer_tree_));
  }
  {
    std::lock_guard<std::mutex> lock(store->writer_mu_);
    store->PublishLocked();
  }
  return store;
}

SnapshotStore::SnapshotRef SnapshotStore::Acquire() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return SnapshotRef{published_, epoch_};
}

uint64_t SnapshotStore::epoch() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return epoch_;
}

size_t SnapshotStore::writer_object_count() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return writer_tree_->size();
}

size_t SnapshotStore::mutations_since_iwp_build() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return mutations_since_iwp_build_;
}

Status SnapshotStore::Apply(const MutationBatch& batch, ApplyStats* stats) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return ApplyLocked(batch, stats);
}

SnapshotStore::SnapshotRef SnapshotStore::Publish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked();
}

Status SnapshotStore::ApplyAndPublish(const MutationBatch& batch, ApplyStats* stats,
                                      SnapshotRef* out) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Status status = ApplyLocked(batch, stats);
  const SnapshotRef ref = PublishLocked();
  if (out != nullptr) *out = ref;
  return status;
}

Status SnapshotStore::ApplyLocked(const MutationBatch& batch, ApplyStats* stats) {
  ApplyStats local;
  for (const Mutation& m : batch) {
    if (m.kind == Mutation::Kind::kInsert) {
      writer_tree_->Insert(m.object);
      if (writer_grid_ != nullptr) writer_grid_->OnInsert(m.object.pos);
      ++local.inserts;
    } else {
      // A miss leaves both tree and grid untouched; the rest of the batch
      // still applies (each mutation is atomic, the batch is not).
      const Status deleted = writer_tree_->Delete(m.object);
      if (deleted.ok()) {
        if (writer_grid_ != nullptr) writer_grid_->OnRemove(m.object.pos);
        ++local.deletes;
      } else {
        ++local.delete_misses;
      }
    }
  }
  const size_t applied = local.inserts + local.deletes;
  unpublished_mutations_ += applied;
  mutations_since_iwp_build_ += applied;
  if (stats != nullptr) *stats = local;
  if (local.delete_misses > 0) {
    return Status::NotFound(
        StrFormat("%zu of %zu deletes matched no stored object", local.delete_misses,
                  local.deletes + local.delete_misses));
  }
  return Status::Ok();
}

SnapshotStore::SnapshotRef SnapshotStore::PublishLocked() {
  uint64_t current_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    if (published_ != nullptr && unpublished_mutations_ == 0) {
      return SnapshotRef{published_, epoch_};
    }
    current_epoch = epoch_;
  }

  // Copy-on-write: the writer stack stays mutable; readers get a deep
  // clone they can hold across any number of future publishes.
  auto tree = std::make_unique<RStarTree>(writer_tree_->Clone());

  std::unique_ptr<IwpIndex> iwp;
  if (config_.session.build_iwp) {
    const bool first_publish = current_epoch == 0;
    if (first_publish || mutations_since_iwp_build_ > config_.iwp_staleness_limit) {
      // Built over the clone — the exact tree this snapshot serves.
      iwp = std::make_unique<IwpIndex>(IwpIndex::Build(*tree));
      mutations_since_iwp_build_ = 0;
    }
    // Else: within the staleness bound the snapshot ships without IWP and
    // the service degrades use_iwp requests (see class comment).
  }

  std::unique_ptr<DensityGrid> grid;
  if (writer_grid_ != nullptr) {
    // Freeze first so the copy carries clean prefix sums — a published
    // grid must never rebuild lazily under concurrent readers.
    writer_grid_->Freeze();
    grid = std::make_unique<DensityGrid>(*writer_grid_);
  }

  auto session = std::make_shared<const Session>(
      Session::FromParts(std::move(tree), std::move(iwp), std::move(grid)));

  std::lock_guard<std::mutex> lock(publish_mu_);
  published_ = std::move(session);
  ++epoch_;
  unpublished_mutations_ = 0;
  return SnapshotRef{published_, epoch_};
}

}  // namespace nwc
