#include "core/nwc_engine.h"

#include <limits>
#include <utility>

#include "core/search_driver.h"

namespace nwc {

namespace {

// Keeps the single best group seen so far; its distance doubles as the
// pruning radius (dist_best in the paper).
class BestGroupSink : public internal::GroupSink {
 public:
  double PruneDistance() const override { return best_distance_; }

  void Offer(std::vector<DataObject> group, double distance) override {
    if (distance < best_distance_) {
      best_distance_ = distance;
      best_group_ = std::move(group);
    }
  }

  NwcResult TakeResult() && {
    NwcResult result;
    result.found = !best_group_.empty();
    result.distance = result.found ? best_distance_ : 0.0;
    result.objects = std::move(best_group_);
    return result;
  }

 private:
  double best_distance_ = std::numeric_limits<double>::infinity();
  std::vector<DataObject> best_group_;
};

}  // namespace

Result<NwcResult> NwcEngine::Execute(const NwcQuery& query, const NwcOptions& options,
                                     IoCounter* io, QueryTrace* trace, QueryControl* control,
                                     WindowQueryMemo* memo) const {
  const Status query_ok = query.Validate();
  if (!query_ok.ok()) return query_ok;
  if (options.use_iwp && iwp_ == nullptr) {
    return Status::FailedPrecondition("IWP enabled but no IwpIndex was supplied");
  }
  if (options.use_dep && grid_ == nullptr) {
    return Status::FailedPrecondition("DEP enabled but no DensityGrid was supplied");
  }
  if (control != nullptr && control->ShouldStop()) return control->status();

  QueryTrace& tr = trace != nullptr ? *trace : NullTrace();
  QueryControl& ctl = control != nullptr ? *control : NullControl();
  BestGroupSink sink;
  {
    TraceSpanScope root_span(tr, SpanKind::kQuery, io);
    internal::RunNwcSearch(tree_, iwp_, grid_, query, options, io, sink, tr, ctl, memo);
  }
  // A stopped control means the search ended early: the sink's contents
  // are partial, so the stop status is the whole answer.
  if (control != nullptr && control->stopped()) return control->status();
  return std::move(sink).TakeResult();
}

}  // namespace nwc
