#include "core/distance_measures.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "simd/kernels.h"

namespace nwc {

Rect GroupWindowUnion(const std::vector<DataObject>& group, double l, double w) {
  Rect bbox = Rect::Empty();
  for (const DataObject& obj : group) bbox.Expand(obj.pos);
  if (bbox.IsEmpty()) return bbox;
  // No window contains a group whose bounding box exceeds l x w. (This
  // must be checked on the bbox: the coverage rect below stays non-empty
  // for spreads up to 2l x 2w.)
  if (bbox.length() > l || bbox.width() > w) return Rect::Empty();
  // Valid window origins (bottom-left corners) form the rectangle
  // [max_x - l, min_x] x [max_y - w, min_y]; sweeping an l x w window over
  // it covers [max_x - l, min_x + l] x [max_y - w, min_y + w].
  return Rect{bbox.max_x - l, bbox.max_y - w, bbox.min_x + l, bbox.min_y + w};
}

bool GroupFitsWindow(const std::vector<DataObject>& group, double l, double w) {
  Rect bbox = Rect::Empty();
  for (const DataObject& obj : group) bbox.Expand(obj.pos);
  if (bbox.IsEmpty()) return false;
  return bbox.length() <= l && bbox.width() <= w;
}

double GroupDistance(const Point& q, const std::vector<DataObject>& group, double l, double w,
                     DistanceMeasure measure) {
  assert(!group.empty());
  // The point-wise measures batch the member distances through the kernel
  // layer; the reductions stay scalar and sequential, so the result (in
  // particular kAvg's left-to-right summation order) is unchanged.
  switch (measure) {
    case DistanceMeasure::kMin:
    case DistanceMeasure::kMax:
    case DistanceMeasure::kAvg: {
      thread_local std::vector<double> dists;
      dists.resize(group.size());
      simd::BatchDistancePoints(q, group.data(), group.size(), dists.data());
      if (measure == DistanceMeasure::kMin) {
        double best = dists[0];
        for (size_t i = 1; i < dists.size(); ++i) best = std::min(best, dists[i]);
        return best;
      }
      if (measure == DistanceMeasure::kMax) {
        double worst = dists[0];
        for (size_t i = 1; i < dists.size(); ++i) worst = std::max(worst, dists[i]);
        return worst;
      }
      double sum = 0.0;
      for (const double d : dists) sum += d;
      return sum / static_cast<double>(group.size());
    }
    case DistanceMeasure::kNearestWindow: {
      const Rect coverage = GroupWindowUnion(group, l, w);
      assert(!coverage.IsEmpty() && "group does not fit an l x w window");
      return MinDist(q, coverage);
    }
  }
  assert(false && "unreachable");
  return 0.0;
}

}  // namespace nwc
