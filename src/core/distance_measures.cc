#include "core/distance_measures.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nwc {

Rect GroupWindowUnion(const std::vector<DataObject>& group, double l, double w) {
  Rect bbox = Rect::Empty();
  for (const DataObject& obj : group) bbox.Expand(obj.pos);
  if (bbox.IsEmpty()) return bbox;
  // No window contains a group whose bounding box exceeds l x w. (This
  // must be checked on the bbox: the coverage rect below stays non-empty
  // for spreads up to 2l x 2w.)
  if (bbox.length() > l || bbox.width() > w) return Rect::Empty();
  // Valid window origins (bottom-left corners) form the rectangle
  // [max_x - l, min_x] x [max_y - w, min_y]; sweeping an l x w window over
  // it covers [max_x - l, min_x + l] x [max_y - w, min_y + w].
  return Rect{bbox.max_x - l, bbox.max_y - w, bbox.min_x + l, bbox.min_y + w};
}

bool GroupFitsWindow(const std::vector<DataObject>& group, double l, double w) {
  Rect bbox = Rect::Empty();
  for (const DataObject& obj : group) bbox.Expand(obj.pos);
  if (bbox.IsEmpty()) return false;
  return bbox.length() <= l && bbox.width() <= w;
}

double GroupDistance(const Point& q, const std::vector<DataObject>& group, double l, double w,
                     DistanceMeasure measure) {
  assert(!group.empty());
  switch (measure) {
    case DistanceMeasure::kMin: {
      double best = Distance(q, group[0].pos);
      for (size_t i = 1; i < group.size(); ++i) {
        best = std::min(best, Distance(q, group[i].pos));
      }
      return best;
    }
    case DistanceMeasure::kMax: {
      double worst = Distance(q, group[0].pos);
      for (size_t i = 1; i < group.size(); ++i) {
        worst = std::max(worst, Distance(q, group[i].pos));
      }
      return worst;
    }
    case DistanceMeasure::kAvg: {
      double sum = 0.0;
      for (const DataObject& obj : group) sum += Distance(q, obj.pos);
      return sum / static_cast<double>(group.size());
    }
    case DistanceMeasure::kNearestWindow: {
      const Rect coverage = GroupWindowUnion(group, l, w);
      assert(!coverage.IsEmpty() && "group does not fit an l x w window");
      return MinDist(q, coverage);
    }
  }
  assert(false && "unreachable");
  return 0.0;
}

}  // namespace nwc
