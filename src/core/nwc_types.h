#ifndef NWC_CORE_NWC_TYPES_H_
#define NWC_CORE_NWC_TYPES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"

namespace nwc {

/// How the distance between the query point q and a group of n objects is
/// measured (paper Sec. 2.1, Eq. 1-4). MINDIST(q, qwin) lower-bounds all
/// four, which is the property the incremental search relies on.
enum class DistanceMeasure {
  kMin,            ///< Eq. 1: distance to the closest group member.
  kMax,            ///< Eq. 2: distance to the farthest group member.
  kAvg,            ///< Eq. 3: mean distance over the group.
  kNearestWindow,  ///< Eq. 4: MINDIST to the nearest window containing the group.
};

/// Stable display name of a measure ("min", "max", "avg", "nearest").
const char* DistanceMeasureName(DistanceMeasure measure);

/// An NWC query (Definition 1): find the n objects clustered within some
/// l x w window whose distance to q is minimal.
struct NwcQuery {
  Point q;          ///< query location
  double length = 0.0;  ///< window x-extent (paper's l)
  double width = 0.0;   ///< window y-extent (paper's w)
  size_t n = 0;         ///< number of objects to retrieve

  /// Rejects non-positive window extents and n == 0.
  Status Validate() const;
};

/// A kNWC query (Definition 3): k groups of n objects, pairwise sharing at
/// most m objects, ordered by distance to q.
struct KnwcQuery {
  NwcQuery base;
  size_t k = 1;  ///< number of groups
  size_t m = 0;  ///< max identical objects between any two groups

  /// Rejects invalid base queries, k == 0, and m >= n (with m >= n the
  /// same group could repeat k times, which is never what a caller wants).
  Status Validate() const;
};

/// Which optimization techniques (paper Sec. 3.3) an engine run enables,
/// plus the distance measure. The seven presets mirror Table 3.
struct NwcOptions {
  bool use_srr = false;  ///< search region reduction (Sec. 3.3.1)
  bool use_dip = false;  ///< distance-based pruning (Sec. 3.3.2)
  bool use_dep = false;  ///< density-based pruning (Sec. 3.3.3)
  bool use_iwp = false;  ///< incremental window query processing (Sec. 3.3.4)
  DistanceMeasure measure = DistanceMeasure::kNearestWindow;

  /// Table 3 presets. "Plain" is the unoptimized NWC algorithm.
  static NwcOptions Plain() { return NwcOptions{}; }
  static NwcOptions Srr() { return NwcOptions{.use_srr = true}; }
  static NwcOptions Dip() { return NwcOptions{.use_dip = true}; }
  static NwcOptions Dep() { return NwcOptions{.use_dep = true}; }
  static NwcOptions Iwp() { return NwcOptions{.use_iwp = true}; }
  /// NWC+ (SRR + DIP): the best schemes needing no extra storage.
  static NwcOptions Plus() { return NwcOptions{.use_srr = true, .use_dip = true}; }
  /// NWC* (all four techniques).
  static NwcOptions Star() {
    return NwcOptions{.use_srr = true, .use_dip = true, .use_dep = true, .use_iwp = true};
  }
};

/// Result of an NWC query. When `found` is false the dataset contains no
/// qualified window (fewer than n objects fit any l x w window) and the
/// other fields are meaningless.
struct NwcResult {
  bool found = false;
  double distance = 0.0;               ///< dist_best under the query's measure
  std::vector<DataObject> objects;     ///< the n best objects
};

/// One group of a kNWC result.
struct NwcGroup {
  double distance = 0.0;
  std::vector<DataObject> objects;
};

/// Result of a kNWC query: up to k groups, ascending by distance. Fewer
/// than k groups are returned when the data cannot supply k sufficiently
/// distinct groups.
struct KnwcResult {
  std::vector<NwcGroup> groups;
};

}  // namespace nwc

#endif  // NWC_CORE_NWC_TYPES_H_
