#ifndef NWC_CORE_COST_MODEL_H_
#define NWC_CORE_COST_MODEL_H_

#include <cstddef>

namespace nwc {

/// Inputs of the paper's Section 4 analytical I/O model. The model assumes
/// objects are Poisson distributed with intensity `lambda` (objects per
/// unit area), window dimensions l x w, and a search for n objects.
struct CostModelParams {
  double lambda = 0.0;  ///< object intensity (objects / unit^2)
  double l = 0.0;       ///< window length
  double w = 0.0;       ///< window width
  size_t n = 0;         ///< objects requested

  // R*-tree shape parameters used to estimate WIN(l, w) and KNN(K)
  // (the paper takes these sub-models from Proietti & Faloutsos [18] and
  // Hjaltason & Samet [10]; we use the standard uniform-data estimates).
  double space_extent = 10000.0;  ///< side of the square data space
  size_t num_objects = 0;         ///< dataset cardinality
  double effective_fanout = 35.0; ///< average entries per node

  /// Maximum rectangle level analyzed (the paper's MaxLV). The space is
  /// tiled by l x w rectangles, so this defaults to enough levels to cover
  /// the space from a central query point.
  size_t max_level = 0;
};

/// The Section 4.1 model, exposed term by term so tests can check each
/// formula and the validation benchmark can print the breakdown.
class NwcCostModel {
 public:
  explicit NwcCostModel(const CostModelParams& params);

  /// Eq. 8: probability that an l x w window is NOT qualified
  /// (P{X <= n-1} for X ~ Poisson(lambda*l*w)).
  double WindowNotQualifiedProb() const;

  /// Eq. 9: number of level-i rectangles, N(i) = 8i - 4.
  static double LevelRectangleCount(size_t i);

  /// Q(i): probability that no level-i qualified window exists,
  /// P^(N(i) * (lambda*l*w)^2); computed in log space. Q(0) = 1.
  double NoQualifiedWindowAtLevel(size_t i) const;

  /// Eq. 10: O(i) = 2 i^2 lambda l w, the expected objects retrieved when
  /// the best group sits at level i.
  double ObjectsRetrieved(size_t i) const;

  /// Probability the best qualified window is at level i:
  /// (1 - Q(i)) * prod_{j<i} Q(j).
  double BestWindowAtLevelProb(size_t i) const;

  /// WIN(l, w): estimated node accesses of one window query (standard
  /// uniform R-tree estimate, after [18]).
  double WindowQueryCost() const;

  /// KNN(K): estimated node accesses to retrieve K nearest neighbors
  /// (best-first search over the same tree shape, after [10]).
  double KnnQueryCost(double k) const;

  /// The paper's bottom line: expected node accesses of one NWC query,
  /// sum_i P(best at level i) * [O(i) * WIN(l,w) + KNN(O(i))].
  double ExpectedIoCost() const;

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
  double log_p_;  // log of WindowNotQualifiedProb()
};

/// The Section 4.2 extension for kNWC queries.
class KnwcCostModel {
 public:
  /// `pr_mk` is the paper's Pr(m, k): the probability that a qualified
  /// window shares at most m objects with every maintained group. The
  /// paper leaves it symbolic; pass an empirical or assumed value in
  /// (0, 1].
  KnwcCostModel(const CostModelParams& params, size_t k, double pr_mk);

  /// P': probability the objects of a window cannot be inserted into the
  /// maintained groups, 1 - (1 - P) * Pr(m, k).
  double NotInsertableProb() const;

  /// R(i, a): probability exactly `a` groups from windows up to level i
  /// entered the maintained list (binomial over O(i)*lambda*l*w windows,
  /// continuous extension via lgamma).
  double GroupsInsertedProb(size_t i, size_t a) const;

  /// S(i, b): probability at least `b` groups from level-i windows entered
  /// the list.
  double AtLeastGroupsAtLevelProb(size_t i, size_t b) const;

  /// Probability the k-th nearest group lies at level i:
  /// sum_j R(i-1, j) * S(i, k - j).
  double KthGroupAtLevelProb(size_t i) const;

  /// Expected node accesses of one kNWC query.
  double ExpectedIoCost() const;

 private:
  NwcCostModel base_;
  size_t k_;
  double log_p_prime_;
};

}  // namespace nwc

#endif  // NWC_CORE_COST_MODEL_H_
