#ifndef NWC_CORE_BRUTE_FORCE_H_
#define NWC_CORE_BRUTE_FORCE_H_

#include <vector>

#include "common/status.h"
#include "core/nwc_types.h"
#include "geometry/point.h"

namespace nwc {

/// Reference NWC implementation for testing: exhaustively enumerates every
/// candidate window with an object on a vertical edge and an object on a
/// horizontal edge — all four edge-role combinations, so the enumeration is
/// complete for any query position without relying on the engine's
/// quadrant machinery — takes the n objects nearest q from each qualified
/// window, and returns the best group under `measure`. O(|P|^3); intended
/// for small inputs.
NwcResult BruteForceNwc(const std::vector<DataObject>& objects, const NwcQuery& query,
                        DistanceMeasure measure);

/// Reference kNWC implementation: enumerates the same canonical window
/// universe as the paper's algorithm (per-object first-quadrant windows,
/// Sec. 3.2) with plain scans, forms each window's n-nearest group,
/// deduplicates, sorts by ascending distance, and greedily selects groups
/// respecting the pairwise overlap budget m — the greedy-by-distance
/// reading of Definition 3 over the algorithm's candidate groups.
///
/// Note: the engine's Steps 1-5 maintenance processes groups in discovery
/// order, which matches this greedy selection except under adversarial
/// overlap/tie structures (see KnwcEngine); exact-equality tests use
/// configurations where the two provably coincide (e.g. m = n-1).
KnwcResult BruteForceKnwc(const std::vector<DataObject>& objects, const KnwcQuery& query,
                          DistanceMeasure measure);

/// Checks that an NWC result is internally consistent with the dataset:
/// found iff a qualified window exists; exactly n distinct stored objects;
/// the group fits an l x w window; the reported distance equals the
/// measure recomputed over the group.
Status CheckNwcResultConsistency(const NwcResult& result,
                                 const std::vector<DataObject>& objects, const NwcQuery& query,
                                 DistanceMeasure measure);

/// Checks Definition 3's structural properties of a kNWC result: every
/// group valid as above, distances non-decreasing, pairwise overlap <= m.
Status CheckKnwcResultConsistency(const KnwcResult& result,
                                  const std::vector<DataObject>& objects,
                                  const KnwcQuery& query, DistanceMeasure measure);

}  // namespace nwc

#endif  // NWC_CORE_BRUTE_FORCE_H_
