#include "core/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace nwc {

namespace {

// log of the Poisson CDF P{X <= n-1} for X ~ Poisson(mu), computed by
// summing terms in log space for numerical stability at large mu.
double LogPoissonCdf(double mu, size_t n_minus_one) {
  if (mu <= 0.0) return 0.0;  // P = 1
  // log of term_i = -mu + i*log(mu) - lgamma(i+1); log-sum-exp over i.
  double max_log_term = -std::numeric_limits<double>::infinity();
  std::vector<double> log_terms;
  log_terms.reserve(n_minus_one + 1);
  for (size_t i = 0; i <= n_minus_one; ++i) {
    const double log_term =
        -mu + static_cast<double>(i) * std::log(mu) - std::lgamma(static_cast<double>(i) + 1.0);
    log_terms.push_back(log_term);
    max_log_term = std::max(max_log_term, log_term);
  }
  double sum = 0.0;
  for (const double log_term : log_terms) sum += std::exp(log_term - max_log_term);
  return max_log_term + std::log(sum);
}

// log(C(t, a)) with a continuous (lgamma) extension for non-integer trial
// counts t, as required by the paper's R(i, a) where the trial count
// O(i) * lambda * l * w is a real number.
double LogChoose(double trials, double successes) {
  if (successes < 0.0 || successes > trials) return -std::numeric_limits<double>::infinity();
  return std::lgamma(trials + 1.0) - std::lgamma(successes + 1.0) -
         std::lgamma(trials - successes + 1.0);
}

// log(1 - exp(x)) for x <= 0, stable near both ends.
double Log1MinusExp(double x) {
  if (x >= 0.0) return -std::numeric_limits<double>::infinity();
  if (x > -0.6931471805599453) return std::log(-std::expm1(x));  // x > -ln 2
  return std::log1p(-std::exp(x));
}

}  // namespace

NwcCostModel::NwcCostModel(const CostModelParams& params) : params_(params) {
  assert(params_.lambda > 0.0 && params_.l > 0.0 && params_.w > 0.0 && params_.n > 0);
  const double mu = params_.lambda * params_.l * params_.w;
  log_p_ = LogPoissonCdf(mu, params_.n - 1);
  if (params_.max_level == 0) {
    // Enough levels for the rectangle tiling to cover the space from a
    // central query point.
    const double span = params_.space_extent * 0.5;
    params_.max_level = static_cast<size_t>(
        std::ceil(std::max(span / params_.l, span / params_.w))) + 1;
  }
}

double NwcCostModel::WindowNotQualifiedProb() const { return std::exp(log_p_); }

double NwcCostModel::LevelRectangleCount(size_t i) {
  if (i == 0) return 0.0;
  return 8.0 * static_cast<double>(i) - 4.0;
}

double NwcCostModel::NoQualifiedWindowAtLevel(size_t i) const {
  if (i == 0) return 1.0;
  const double mu = params_.lambda * params_.l * params_.w;
  const double exponent = LevelRectangleCount(i) * mu * mu;
  return std::exp(exponent * log_p_);
}

double NwcCostModel::ObjectsRetrieved(size_t i) const {
  const double mu = params_.lambda * params_.l * params_.w;
  const double level = static_cast<double>(i);
  return 2.0 * level * level * mu;
}

double NwcCostModel::BestWindowAtLevelProb(size_t i) const {
  if (i == 0) return 0.0;
  double product = 1.0;
  for (size_t j = 1; j < i; ++j) product *= NoQualifiedWindowAtLevel(j);
  return (1.0 - NoQualifiedWindowAtLevel(i)) * product;
}

double NwcCostModel::WindowQueryCost() const {
  // Standard uniform-data R-tree selectivity estimate [18]: at level j
  // (leaves = 0) there are N / f^(j+1) nodes with square MBRs of side
  // sigma_j = extent * sqrt(f^(j+1) / N); a window of size l x w touches
  // N_j * (sigma_j + l) * (sigma_j + w) / extent^2 of them, plus the root.
  const double n_objects = static_cast<double>(std::max<size_t>(params_.num_objects, 1));
  const double f = params_.effective_fanout;
  const double area = params_.space_extent * params_.space_extent;
  double cost = 1.0;  // root
  double nodes_at_level = n_objects / f;
  while (nodes_at_level > 1.0) {
    const double sigma = params_.space_extent / std::sqrt(nodes_at_level);
    const double touched =
        nodes_at_level * (sigma + params_.l) * (sigma + params_.w) / area;
    cost += std::min(nodes_at_level, std::max(1.0, touched));
    nodes_at_level /= f;
  }
  return cost;
}

double NwcCostModel::KnnQueryCost(double k) const {
  // Best-first kNN visits roughly the nodes intersecting the disc that
  // holds the k nearest objects [10]; estimate it as a window query with
  // the disc's bounding square.
  if (k <= 0.0) return 1.0;
  const double radius = std::sqrt(k / (params_.lambda * 3.14159265358979323846));
  const double n_objects = static_cast<double>(std::max<size_t>(params_.num_objects, 1));
  const double f = params_.effective_fanout;
  const double area = params_.space_extent * params_.space_extent;
  double cost = 1.0;
  double nodes_at_level = n_objects / f;
  while (nodes_at_level > 1.0) {
    const double sigma = params_.space_extent / std::sqrt(nodes_at_level);
    const double side = 2.0 * radius;
    const double touched = nodes_at_level * (sigma + side) * (sigma + side) / area;
    cost += std::min(nodes_at_level, std::max(1.0, touched));
    nodes_at_level /= f;
  }
  return cost;
}

double NwcCostModel::ExpectedIoCost() const {
  const double win = WindowQueryCost();
  double expected = 0.0;
  double survival = 1.0;  // prod_{j<i} Q(j)
  for (size_t i = 1; i <= params_.max_level; ++i) {
    const double q_i = NoQualifiedWindowAtLevel(i);
    const double p_level = (1.0 - q_i) * survival;
    if (p_level > 0.0) {
      const double objects = ObjectsRetrieved(i);
      expected += p_level * (objects * win + KnnQueryCost(objects));
    }
    survival *= q_i;
    if (survival < 1e-300) break;
  }
  return expected;
}

KnwcCostModel::KnwcCostModel(const CostModelParams& params, size_t k, double pr_mk)
    : base_(params), k_(k) {
  assert(k_ > 0 && pr_mk > 0.0 && pr_mk <= 1.0);
  // P' = 1 - (1 - P) * Pr(m, k), in log space.
  const double p = base_.WindowNotQualifiedProb();
  const double p_prime = 1.0 - (1.0 - p) * pr_mk;
  log_p_prime_ = std::log(std::max(p_prime, 1e-300));
}

double KnwcCostModel::NotInsertableProb() const { return std::exp(log_p_prime_); }

double KnwcCostModel::GroupsInsertedProb(size_t i, size_t a) const {
  // Binomial(trials = O(i) * lambda*l*w, success = 1 - P') at exactly a.
  if (i == 0) return a == 0 ? 1.0 : 0.0;
  const CostModelParams& p = base_.params();
  const double mu = p.lambda * p.l * p.w;
  const double trials = base_.ObjectsRetrieved(i) * mu;
  const double a_real = static_cast<double>(a);
  if (a_real > trials) return 0.0;
  const double log_success = Log1MinusExp(log_p_prime_);
  const double log_prob = LogChoose(trials, a_real) + a_real * log_success +
                          (trials - a_real) * log_p_prime_;
  return std::exp(log_prob);
}

double KnwcCostModel::AtLeastGroupsAtLevelProb(size_t i, size_t b) const {
  // S(i, b) = 1 - sum_{d < b} Binomial(N(i) * mu^2, 1 - P') at exactly d.
  const CostModelParams& p = base_.params();
  const double mu = p.lambda * p.l * p.w;
  const double trials = NwcCostModel::LevelRectangleCount(i) * mu * mu;
  const double log_success = Log1MinusExp(log_p_prime_);
  double below = 0.0;
  for (size_t d = 0; d < b; ++d) {
    const double d_real = static_cast<double>(d);
    if (d_real > trials) break;
    below += std::exp(LogChoose(trials, d_real) + d_real * log_success +
                      (trials - d_real) * log_p_prime_);
  }
  return std::max(0.0, 1.0 - below);
}

double KnwcCostModel::KthGroupAtLevelProb(size_t i) const {
  if (i == 0) return 0.0;
  double prob = 0.0;
  for (size_t j = 0; j < k_; ++j) {
    prob += GroupsInsertedProb(i - 1, j) * AtLeastGroupsAtLevelProb(i, k_ - j);
  }
  return prob;
}

double KnwcCostModel::ExpectedIoCost() const {
  const double win = base_.WindowQueryCost();
  double expected = 0.0;
  for (size_t i = 1; i <= base_.params().max_level; ++i) {
    const double p_level = KthGroupAtLevelProb(i);
    if (p_level <= 0.0) continue;
    const double objects = base_.ObjectsRetrieved(i);
    expected += p_level * (objects * win + base_.KnnQueryCost(objects));
  }
  return expected;
}

}  // namespace nwc
