#ifndef NWC_CORE_SEARCH_DRIVER_H_
#define NWC_CORE_SEARCH_DRIVER_H_

#include <vector>

#include "common/cancel.h"
#include "common/io_stats.h"
#include "core/nwc_types.h"
#include "geometry/point.h"
#include "grid/density_grid.h"
#include "obs/query_trace.h"
#include "rtree/iwp_index.h"
#include "rtree/rstar_tree.h"

namespace nwc {
class WindowQueryMemo;
}

namespace nwc::internal {

/// Consumer of candidate groups produced by the search driver. NwcEngine
/// keeps the single best group; KnwcEngine maintains the k-group list of
/// Sec. 3.4.
class GroupSink {
 public:
  virtual ~GroupSink() = default;

  /// The pruning radius for SRR / DIP / the per-window MINDIST gate:
  /// dist_best for NWC, dist(q, objs_k) for kNWC (+infinity while no bound
  /// exists). Every candidate whose relevant lower bound reaches this
  /// value is skipped.
  virtual double PruneDistance() const = 0;

  /// Offers a qualified group: the n objects of a qualified window closest
  /// to q, with `distance` already computed under the query's measure.
  /// Called only when distance < PruneDistance() held at window-gate time;
  /// the sink re-checks against its own state as needed.
  virtual void Offer(std::vector<DataObject> group, double distance) = 0;
};

/// Runs the NWC search (Algorithm 1): best-first traversal of the R*-tree
/// from q, per-object search-region construction and window queries, and
/// qualified-window evaluation, feeding every surviving group to `sink`.
///
/// Optimization toggles in `options` select SRR / DIP / DEP / IWP exactly
/// as in the paper; `iwp` may be null unless options.use_iwp, `grid` may
/// be null unless options.use_dep (callers validate beforehand). All node
/// visits are charged to `io` (traversal vs. window-query phases).
///
/// `trace` records the search as hierarchical spans: one kBrowseNode span
/// per node expansion (with DIP/DEP check children), one kCandidate span
/// per object popped (with SRR/DEP/window-query children), plus the
/// structured pruning counters and the traversal-heap high-water mark.
/// Pass NullTrace() to run untraced — the disabled recorder reduces every
/// record call to a single branch.
///
/// `control` makes the search cooperative: it is polled at every queue pop
/// and inside the window-query walks, and the loop exits as soon as it
/// reports a stop (deadline, external cancel, or a fault routed in via
/// ReportFault). A stopped search leaves the sink holding whatever partial
/// state it had — callers must check control.stopped() and surface the
/// control's status instead of the sink's result. Pass NullControl() to run
/// unguarded (one branch per checkpoint, like NullTrace()).
///
/// `memo` (optional) short-circuits window queries whose (scope, window)
/// pair was already walked to completion earlier in the same batch: a memo
/// hit reuses the recorded hit set with zero page reads and is counted as
/// kWindowMemoHits. Only completed walks are memoized, so hits are
/// bit-identical to re-running the query. The memo is not thread-safe —
/// pass one per worker, or nullptr to disable.
void RunNwcSearch(const RStarTree& tree, const IwpIndex* iwp, const DensityGrid* grid,
                  const NwcQuery& query, const NwcOptions& options, IoCounter* io,
                  GroupSink& sink, QueryTrace& trace, QueryControl& control,
                  WindowQueryMemo* memo = nullptr);

}  // namespace nwc::internal

#endif  // NWC_CORE_SEARCH_DRIVER_H_
