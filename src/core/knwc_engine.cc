#include "core/knwc_engine.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "core/search_driver.h"

namespace nwc {

namespace {

// A maintained group plus its sorted object ids for fast overlap counting.
struct MaintainedGroup {
  double distance = 0.0;
  std::vector<DataObject> objects;
  std::vector<ObjectId> sorted_ids;
};

std::vector<ObjectId> SortedIds(const std::vector<DataObject>& objects) {
  std::vector<ObjectId> ids;
  ids.reserve(objects.size());
  for (const DataObject& obj : objects) ids.push_back(obj.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// |a intersect b| for sorted id vectors.
size_t OverlapCount(const std::vector<ObjectId>& a, const std::vector<ObjectId>& b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// The Steps 1-5 maintenance procedure of Sec. 3.4.
class KGroupSink : public internal::GroupSink {
 public:
  KGroupSink(size_t k, size_t m, QueryTrace& trace) : k_(k), m_(m), trace_(trace) {}

  double PruneDistance() const override {
    if (groups_.size() < k_) return std::numeric_limits<double>::infinity();
    return groups_.back().distance;
  }

  void Offer(std::vector<DataObject> group, double distance) override {
    // The overlap filtering below is the kNWC-specific cost on top of the
    // NWC search; span it so traces attribute it separately. No I/O
    // happens here, so the span is passed no counter.
    TraceSpanScope filter_span(trace_, SpanKind::kOverlapFilter, nullptr);
    OfferImpl(std::move(group), distance);
  }

 private:
  void OfferImpl(std::vector<DataObject> group, double distance) {
    // Step 2: scan in reverse for the first group not farther than the
    // candidate; the candidate belongs right after it. (The paper scans
    // for "distance shorter than objs_p"; placing the candidate after
    // equal-distance groups instead is essential so that a re-discovered
    // group meets its existing copy in the Step 3 overlap check and is
    // dropped, rather than evicting the k-th group and then deleting its
    // own twin in Step 5 — which would shrink the list and lose a result.)
    size_t insert_at = groups_.size();
    while (insert_at > 0 && groups_[insert_at - 1].distance > distance) --insert_at;
    if (insert_at == k_) return;  // all k held groups are at least as near: drop

    MaintainedGroup candidate;
    candidate.distance = distance;
    candidate.sorted_ids = SortedIds(group);
    candidate.objects = std::move(group);

    // Step 3: the candidate must respect the overlap budget against every
    // nearer group, or it is dropped.
    for (size_t j = 0; j < insert_at; ++j) {
      if (OverlapCount(candidate.sorted_ids, groups_[j].sorted_ids) > m_) {
        trace_.Count(TraceCounter::kGroupsDroppedOverlap);
        return;
      }
    }

    // Step 4: evict the current k-th group if full, insert the candidate.
    if (groups_.size() == k_) groups_.pop_back();
    groups_.insert(groups_.begin() + static_cast<ptrdiff_t>(insert_at), std::move(candidate));

    // Step 5: farther groups overlapping the new one too much are removed.
    const MaintainedGroup& inserted = groups_[insert_at];
    for (size_t j = insert_at + 1; j < groups_.size();) {
      if (OverlapCount(inserted.sorted_ids, groups_[j].sorted_ids) > m_) {
        trace_.Count(TraceCounter::kGroupsDroppedOverlap);
        groups_.erase(groups_.begin() + static_cast<ptrdiff_t>(j));
      } else {
        ++j;
      }
    }
  }

 public:
  KnwcResult TakeResult() && {
    KnwcResult result;
    result.groups.reserve(groups_.size());
    for (MaintainedGroup& g : groups_) {
      result.groups.push_back(NwcGroup{g.distance, std::move(g.objects)});
    }
    return result;
  }

 private:
  size_t k_;
  size_t m_;
  QueryTrace& trace_;
  std::vector<MaintainedGroup> groups_;  // ascending by distance
};

}  // namespace

Result<KnwcResult> KnwcEngine::Execute(const KnwcQuery& query, const NwcOptions& options,
                                       IoCounter* io, QueryTrace* trace, QueryControl* control,
                                       WindowQueryMemo* memo) const {
  const Status query_ok = query.Validate();
  if (!query_ok.ok()) return query_ok;
  if (options.use_iwp && iwp_ == nullptr) {
    return Status::FailedPrecondition("IWP enabled but no IwpIndex was supplied");
  }
  if (options.use_dep && grid_ == nullptr) {
    return Status::FailedPrecondition("DEP enabled but no DensityGrid was supplied");
  }
  if (control != nullptr && control->ShouldStop()) return control->status();

  QueryTrace& tr = trace != nullptr ? *trace : NullTrace();
  QueryControl& ctl = control != nullptr ? *control : NullControl();
  KGroupSink sink(query.k, query.m, tr);
  {
    TraceSpanScope root_span(tr, SpanKind::kQuery, io);
    internal::RunNwcSearch(tree_, iwp_, grid_, query.base, options, io, sink, tr, ctl, memo);
  }
  if (control != nullptr && control->stopped()) return control->status();
  return std::move(sink).TakeResult();
}

}  // namespace nwc
