#ifndef NWC_CORE_SEARCH_ARENA_H_
#define NWC_CORE_SEARCH_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <memory_resource>
#include <optional>
#include <vector>

namespace nwc::internal {

/// Monotonic allocation arena for the transient containers of one search:
/// the best-first priority queue and the per-candidate member/scratch
/// buffers. These are pure bump allocations from a retained buffer —
/// nothing is freed mid-query, every Reset() makes the whole buffer
/// available again — so steady-state query execution performs zero heap
/// allocations once the buffer has grown to the workload's high-water
/// mark.
///
/// Usage: call Reset() at the start of each query and hand the returned
/// memory_resource to std::pmr containers whose lifetime ends before the
/// next Reset(). When a query overflows the retained buffer, the overflow
/// is served from the heap (correctness is never at stake) and the buffer
/// is grown on the next Reset() to absorb it.
///
/// NOT thread-safe; intended as a thread_local, one per query worker.
class SearchArena {
 public:
  explicit SearchArena(size_t initial_bytes = 64 * 1024) : buffer_(initial_bytes) {}

  SearchArena(const SearchArena&) = delete;
  SearchArena& operator=(const SearchArena&) = delete;

  /// Discards all prior allocations and returns the resource for the next
  /// query. Every container allocated from the previous epoch must already
  /// be destroyed.
  std::pmr::memory_resource* Reset() {
    resource_.reset();  // returns overflow chunks to the upstream counter
    if (const size_t overflowed = overflow_.TakeAllocated(); overflowed > 0) {
      // Overflow means the workload outgrew the buffer: retain enough that
      // the same query shape fits entirely next time, at least doubling to
      // amortize repeated growth.
      const size_t target = std::max(buffer_.size() * 2, buffer_.size() + overflowed);
      buffer_.clear();
      buffer_.resize(target);
    }
    resource_.emplace(buffer_.data(), buffer_.size(), &overflow_);
    return &*resource_;
  }

  /// Bytes of retained buffer (diagnostics).
  size_t capacity() const { return buffer_.size(); }

 private:
  /// Pass-through to the default heap resource that records how many bytes
  /// overflowed the retained buffer.
  class CountingUpstream : public std::pmr::memory_resource {
   public:
    size_t TakeAllocated() {
      const size_t bytes = allocated_;
      allocated_ = 0;
      return bytes;
    }

   private:
    void* do_allocate(size_t bytes, size_t alignment) override {
      allocated_ += bytes;
      return std::pmr::new_delete_resource()->allocate(bytes, alignment);
    }
    void do_deallocate(void* p, size_t bytes, size_t alignment) override {
      std::pmr::new_delete_resource()->deallocate(p, bytes, alignment);
    }
    bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override {
      return this == &other;
    }

    size_t allocated_ = 0;
  };

  std::vector<std::byte> buffer_;
  CountingUpstream overflow_;
  std::optional<std::pmr::monotonic_buffer_resource> resource_;
};

}  // namespace nwc::internal

#endif  // NWC_CORE_SEARCH_ARENA_H_
