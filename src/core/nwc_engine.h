#ifndef NWC_CORE_NWC_ENGINE_H_
#define NWC_CORE_NWC_ENGINE_H_

#include "common/cancel.h"
#include "common/io_stats.h"
#include "common/status.h"
#include "core/nwc_types.h"
#include "grid/density_grid.h"
#include "obs/query_trace.h"
#include "rtree/iwp_index.h"
#include "rtree/rstar_tree.h"

namespace nwc {

class WindowQueryMemo;

/// Answers NWC queries over an R*-tree (paper Sec. 3, Algorithm 1).
///
/// The engine incrementally discovers qualified windows nearest to q —
/// visiting objects in ascending distance via best-first traversal,
/// building each object's search region, and evaluating the windows it
/// generates — and keeps the best n-object group under the query's
/// distance measure. The four optimization techniques are selected per
/// call through NwcOptions; every preset returns a group at the same
/// (optimal) distance, only the I/O cost differs.
///
/// Usage:
///   RStarTree tree = BulkLoadStr(dataset.objects, RTreeOptions{});
///   IwpIndex iwp = IwpIndex::Build(tree);                 // for IWP
///   DensityGrid grid(dataset.space, 25.0, dataset.objects);  // for DEP
///   NwcEngine engine(tree, &iwp, &grid);
///   IoCounter io;
///   Result<NwcResult> result =
///       engine.Execute({q, 8.0, 8.0, 8}, NwcOptions::Star(), &io);
///
/// The tree (and, when supplied, the IWP index and density grid) must
/// outlive the engine and stay unmodified while it is used.
class NwcEngine {
 public:
  /// Binds the engine to an index. `iwp` is required only for options with
  /// use_iwp; `grid` only for use_dep.
  explicit NwcEngine(const RStarTree& tree, const IwpIndex* iwp = nullptr,
                     const DensityGrid* grid = nullptr)
      : tree_(tree), iwp_(iwp), grid_(grid) {}

  /// Runs one NWC query. Returns InvalidArgument for malformed queries and
  /// FailedPrecondition when an enabled optimization lacks its structure.
  /// `io` (optional) accumulates the simulated I/O cost. `trace` (optional)
  /// records the execution as hierarchical spans plus pruning counters; a
  /// null / disabled recorder costs one branch per record site (see
  /// obs/query_trace.h).
  ///
  /// `control` (optional) arms cooperative deadline/cancel/fault handling:
  /// when the control stops mid-search, Execute discards any partial result
  /// and returns the control's status (DeadlineExceeded, Cancelled, or the
  /// reported IoError) — a stopped query never yields a truncated answer.
  ///
  /// `memo` (optional) reuses completed window-query walks across queries
  /// of a batch (see rtree/queries.h); results stay bit-identical to an
  /// unmemoized run. Not thread-safe — one memo per worker.
  Result<NwcResult> Execute(const NwcQuery& query, const NwcOptions& options, IoCounter* io,
                            QueryTrace* trace = nullptr, QueryControl* control = nullptr,
                            WindowQueryMemo* memo = nullptr) const;

 private:
  const RStarTree& tree_;
  const IwpIndex* iwp_;
  const DensityGrid* grid_;
};

}  // namespace nwc

#endif  // NWC_CORE_NWC_ENGINE_H_
