#include "core/nwc_types.h"

#include "common/string_util.h"

namespace nwc {

const char* DistanceMeasureName(DistanceMeasure measure) {
  switch (measure) {
    case DistanceMeasure::kMin:
      return "min";
    case DistanceMeasure::kMax:
      return "max";
    case DistanceMeasure::kAvg:
      return "avg";
    case DistanceMeasure::kNearestWindow:
      return "nearest";
  }
  return "unknown";
}

Status NwcQuery::Validate() const {
  if (length <= 0.0 || width <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("window extents must be positive, got l=%f w=%f", length, width));
  }
  if (n == 0) {
    return Status::InvalidArgument("n must be at least 1");
  }
  return Status::Ok();
}

Status KnwcQuery::Validate() const {
  const Status base_ok = base.Validate();
  if (!base_ok.ok()) return base_ok;
  if (k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (m >= base.n) {
    return Status::InvalidArgument(
        StrFormat("m must be smaller than n (got m=%zu, n=%zu)", m, base.n));
  }
  return Status::Ok();
}

}  // namespace nwc
