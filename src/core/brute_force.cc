#include "core/brute_force.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/string_util.h"
#include "core/distance_measures.h"
#include "geometry/quadrant.h"
#include "geometry/rect.h"

namespace nwc {

NwcResult BruteForceNwc(const std::vector<DataObject>& objects, const NwcQuery& query,
                        DistanceMeasure measure) {
  NwcResult best;
  double best_distance = std::numeric_limits<double>::infinity();

  NwcQuery q = query;
  const double l = q.length;
  const double w = q.width;
  const size_t n = q.n;
  if (objects.size() < n) return best;

  std::vector<const DataObject*> in_x;
  std::vector<const DataObject*> in_window;
  std::vector<std::pair<double, const DataObject*>> by_dist;

  for (const DataObject& a : objects) {
    for (const double min_x : {a.pos.x - l, a.pos.x}) {
      in_x.clear();
      for (const DataObject& obj : objects) {
        if (obj.pos.x >= min_x && obj.pos.x <= min_x + l) in_x.push_back(&obj);
      }
      if (in_x.size() < n) continue;
      for (const DataObject* b : in_x) {
        for (const double min_y : {b->pos.y - w, b->pos.y}) {
          in_window.clear();
          for (const DataObject* obj : in_x) {
            if (obj->pos.y >= min_y && obj->pos.y <= min_y + w) in_window.push_back(obj);
          }
          if (in_window.size() < n) continue;

          by_dist.clear();
          for (const DataObject* obj : in_window) {
            by_dist.emplace_back(Distance(q.q, obj->pos), obj);
          }
          std::nth_element(by_dist.begin(), by_dist.begin() + static_cast<ptrdiff_t>(n - 1),
                           by_dist.end());
          std::vector<DataObject> group;
          group.reserve(n);
          for (size_t i = 0; i < n; ++i) group.push_back(*by_dist[i].second);
          const double d = GroupDistance(q.q, group, l, w, measure);
          if (d < best_distance) {
            best_distance = d;
            best.objects = std::move(group);
          }
        }
      }
    }
  }
  best.found = !best.objects.empty();
  best.distance = best.found ? best_distance : 0.0;
  return best;
}

KnwcResult BruteForceKnwc(const std::vector<DataObject>& objects, const KnwcQuery& query,
                          DistanceMeasure measure) {
  const NwcQuery& base = query.base;
  const double l = base.length;
  const double w = base.width;
  const size_t n = base.n;
  KnwcResult result;
  if (objects.size() < n) return result;

  // Collect all distinct candidate groups with their distances. The
  // candidate universe must match the engine's (Sec. 3.2): for each object
  // p, map everything into p's first-quadrant frame and form windows with
  // p on the right edge and each at-or-above object on the top edge. The
  // paper's algorithm only ever forms groups as "the n nearest objects of
  // such a window", so a brute force over a larger window family would
  // disagree beyond the first group.
  std::map<std::vector<ObjectId>, std::pair<double, std::vector<DataObject>>> candidates;
  std::vector<std::pair<Point, const DataObject*>> in_sr;  // frame pos, object
  std::vector<std::pair<double, const DataObject*>> by_dist;

  for (const DataObject& p : objects) {
    const QuadrantTransform transform = QuadrantTransform::MapToFirstQuadrant(base.q, p.pos);
    const Point p_frame = transform.Apply(p.pos);
    in_sr.clear();
    for (const DataObject& obj : objects) {
      const Point frame = transform.Apply(obj.pos);
      if (frame.x >= p_frame.x - l && frame.x <= p_frame.x &&
          frame.y >= p_frame.y - w && frame.y <= p_frame.y + w) {
        in_sr.emplace_back(frame, &obj);
      }
    }
    if (in_sr.size() < n) continue;
    for (const auto& [top_frame, top_obj] : in_sr) {
      if (top_frame.y < p_frame.y) continue;  // top edge must be at/above p
      const double top = top_frame.y;
      by_dist.clear();
      for (const auto& [frame, obj] : in_sr) {
        if (frame.y >= top - w && frame.y <= top) {
          by_dist.emplace_back(Distance(base.q, obj->pos), obj);
        }
      }
      if (by_dist.size() < n) continue;
      std::nth_element(by_dist.begin(), by_dist.begin() + static_cast<ptrdiff_t>(n - 1),
                       by_dist.end());
      std::vector<DataObject> group;
      group.reserve(n);
      for (size_t i = 0; i < n; ++i) group.push_back(*by_dist[i].second);
      std::vector<ObjectId> ids;
      ids.reserve(n);
      for (const DataObject& obj : group) ids.push_back(obj.id);
      std::sort(ids.begin(), ids.end());
      const double d = GroupDistance(base.q, group, l, w, measure);
      candidates.emplace(std::move(ids), std::make_pair(d, std::move(group)));
    }
  }

  // Greedy by ascending distance (ties broken by the id-set order of the
  // map, which is deterministic).
  std::vector<std::pair<double, const std::vector<ObjectId>*>> order;
  order.reserve(candidates.size());
  for (const auto& [ids, entry] : candidates) {
    order.emplace_back(entry.first, &ids);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });

  std::vector<const std::vector<ObjectId>*> selected_ids;
  for (const auto& [d, ids] : order) {
    if (result.groups.size() == query.k) break;
    bool compatible = true;
    for (const std::vector<ObjectId>* held : selected_ids) {
      size_t overlap = 0;
      size_t i = 0;
      size_t j = 0;
      while (i < held->size() && j < ids->size()) {
        if ((*held)[i] < (*ids)[j]) {
          ++i;
        } else if ((*ids)[j] < (*held)[i]) {
          ++j;
        } else {
          ++overlap;
          ++i;
          ++j;
        }
      }
      if (overlap > query.m) {
        compatible = false;
        break;
      }
    }
    if (!compatible) continue;
    selected_ids.push_back(ids);
    result.groups.push_back(NwcGroup{d, candidates.at(*ids).second});
  }
  return result;
}

Status CheckNwcResultConsistency(const NwcResult& result,
                                 const std::vector<DataObject>& objects, const NwcQuery& query,
                                 DistanceMeasure measure) {
  if (!result.found) {
    if (!result.objects.empty()) {
      return Status::Internal("result not found but objects returned");
    }
    return Status::Ok();
  }
  if (result.objects.size() != query.n) {
    return Status::Internal(StrFormat("expected %zu objects, got %zu", query.n,
                                      result.objects.size()));
  }
  std::set<ObjectId> ids;
  for (const DataObject& obj : result.objects) {
    if (!ids.insert(obj.id).second) {
      return Status::Internal(StrFormat("duplicate object id %u in group", obj.id));
    }
    const bool stored = std::any_of(objects.begin(), objects.end(),
                                    [&obj](const DataObject& o) { return o == obj; });
    if (!stored) {
      return Status::Internal(StrFormat("object id %u is not in the dataset", obj.id));
    }
  }
  if (!GroupFitsWindow(result.objects, query.length, query.width)) {
    return Status::Internal("group does not fit an l x w window");
  }
  const double recomputed =
      GroupDistance(query.q, result.objects, query.length, query.width, measure);
  if (std::abs(recomputed - result.distance) > 1e-9 * std::max(1.0, recomputed)) {
    return Status::Internal(StrFormat("distance %.17g does not match recomputed %.17g",
                                      result.distance, recomputed));
  }
  return Status::Ok();
}

Status CheckKnwcResultConsistency(const KnwcResult& result,
                                  const std::vector<DataObject>& objects,
                                  const KnwcQuery& query, DistanceMeasure measure) {
  double previous = -std::numeric_limits<double>::infinity();
  std::vector<std::set<ObjectId>> id_sets;
  for (const NwcGroup& group : result.groups) {
    NwcResult as_result;
    as_result.found = true;
    as_result.distance = group.distance;
    as_result.objects = group.objects;
    const Status group_ok = CheckNwcResultConsistency(as_result, objects, query.base, measure);
    if (!group_ok.ok()) return group_ok;
    if (group.distance < previous) {
      return Status::Internal("group distances are not non-decreasing");
    }
    previous = group.distance;
    std::set<ObjectId> ids;
    for (const DataObject& obj : group.objects) ids.insert(obj.id);
    id_sets.push_back(std::move(ids));
  }
  for (size_t i = 0; i < id_sets.size(); ++i) {
    for (size_t j = i + 1; j < id_sets.size(); ++j) {
      size_t overlap = 0;
      for (const ObjectId id : id_sets[i]) {
        if (id_sets[j].count(id) > 0) ++overlap;
      }
      if (overlap > query.m) {
        return Status::Internal(
            StrFormat("groups %zu and %zu share %zu objects (m=%zu)", i, j, overlap, query.m));
      }
    }
  }
  if (result.groups.size() > query.k) {
    return Status::Internal(StrFormat("returned %zu groups for k=%zu", result.groups.size(),
                                      query.k));
  }
  return Status::Ok();
}

}  // namespace nwc
