#ifndef NWC_CORE_DISTANCE_MEASURES_H_
#define NWC_CORE_DISTANCE_MEASURES_H_

#include <vector>

#include "core/nwc_types.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace nwc {

/// Computes dist(q, {p_1..p_n}) under `measure` (paper Eq. 1-4) for a
/// group that fits an l x w window. `group` must be non-empty.
///
/// The nearest-window measure (Eq. 4) is evaluated in closed form: the
/// union of all l x w windows containing the group is the rectangle
/// [max_x - l, min_x + l] x [max_y - w, min_y + w] (where min/max range
/// over the group), so the measure equals MINDIST(q, that rectangle).
double GroupDistance(const Point& q, const std::vector<DataObject>& group, double l, double w,
                     DistanceMeasure measure);

/// The union of all l x w windows containing `group` (see GroupDistance).
/// Empty when the group's bounding box exceeds l x w (no window contains
/// it).
Rect GroupWindowUnion(const std::vector<DataObject>& group, double l, double w);

/// True when the group's bounding box fits inside an l x w window
/// (boundary-inclusive), i.e. the group is a legal NWC answer.
bool GroupFitsWindow(const std::vector<DataObject>& group, double l, double w);

}  // namespace nwc

#endif  // NWC_CORE_DISTANCE_MEASURES_H_
