#include "core/search_region.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nwc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The closed quadrant rectangle about q selected by the two flip flags
// (flip_x: negative x side, flip_y: negative y side).
Rect QuadrantRect(const Point& q, bool flip_x, bool flip_y) {
  Rect r;
  r.min_x = flip_x ? -kInf : q.x;
  r.max_x = flip_x ? q.x : kInf;
  r.min_y = flip_y ? -kInf : q.y;
  r.max_y = flip_y ? q.y : kInf;
  return r;
}

// First-quadrant SR extension of a rect already mapped into the frame.
Rect ExtendFirstQuadrant(const Rect& part_frame, double l, double w) {
  return Rect{part_frame.min_x - l, part_frame.min_y - w, part_frame.max_x,
              part_frame.max_y + w};
}

// Applies `fn(extended_frame_part, transform)` for each non-empty quadrant
// clip of `region`.
template <typename Fn>
void ForEachQuadrantExtension(const Point& q, const Rect& region, double l, double w,
                              const Fn& fn) {
  for (const bool flip_x : {false, true}) {
    for (const bool flip_y : {false, true}) {
      const Rect clip = Rect::Intersection(region, QuadrantRect(q, flip_x, flip_y));
      if (clip.IsEmpty()) continue;
      // Build the reflection explicitly from the flags (the factory needs
      // a representative point; any point of the clip works).
      const QuadrantTransform transform = QuadrantTransform::MapToFirstQuadrant(
          q, Point{flip_x ? q.x - 1.0 : q.x + 1.0, flip_y ? q.y - 1.0 : q.y + 1.0});
      const Rect part_frame = transform.Apply(clip);
      fn(ExtendFirstQuadrant(part_frame, l, w), transform);
    }
  }
}

}  // namespace

Rect SearchRegionFirstQuadrant(const Point& p_frame, double l, double w) {
  return Rect{p_frame.x - l, p_frame.y - w, p_frame.x, p_frame.y + w};
}

std::optional<double> SrrTopExtent(const Point& q, const Point& p_frame, double l, double w,
                                   double dist_best) {
  if (dist_best <= 0.0) return std::nullopt;
  if (dist_best == kInf) return w;

  // x-distance from q to the region (q never lies right of it: the frame
  // guarantees q.x <= p_frame.x).
  const double dx = std::max(0.0, (p_frame.x - l) - q.x);
  if (dx * dx >= dist_best * dist_best) return std::nullopt;

  // Largest w' such that the topmost window [y_p + w' - w, y_p + w'] still
  // has MINDIST <= dist_best.
  const double dy_max = std::sqrt(dist_best * dist_best - dx * dx);
  const double w_prime = std::min(w, dy_max - (p_frame.y - w - q.y));
  if (w_prime < 0.0) return std::nullopt;
  return w_prime;
}

Rect ShrinkSearchRegion(const Point& q, const Point& p_frame, double l, double w,
                        double dist_best) {
  const std::optional<double> top_extent = SrrTopExtent(q, p_frame, l, w, dist_best);
  if (!top_extent.has_value()) return Rect::Empty();
  const Rect full = SearchRegionFirstQuadrant(p_frame, l, w);
  return Rect{full.min_x, full.min_y, full.max_x, p_frame.y + *top_extent};
}

Rect SearchRegionWorld(const Point& p, double l, double w, double top_extent,
                       const QuadrantTransform& transform) {
  Rect sr;
  if (transform.flips_x()) {
    sr.min_x = p.x;
    sr.max_x = p.x + l;
  } else {
    sr.min_x = p.x - l;
    sr.max_x = p.x;
  }
  if (transform.flips_y()) {
    sr.min_y = p.y - top_extent;
    sr.max_y = p.y + w;
  } else {
    sr.min_y = p.y - w;
    sr.max_y = p.y + top_extent;
  }
  return sr;
}

double GeneratedWindowLowerBound(const Point& q, const Rect& region, double l, double w) {
  if (region.IsEmpty()) return kInf;
  double bound = kInf;
  ForEachQuadrantExtension(q, region, l, w,
                           [&](const Rect& extended_frame, const QuadrantTransform&) {
                             bound = std::min(bound, MinDist(q, extended_frame));
                           });
  return bound;
}

Rect DepExtendedMbr(const Point& q, const Rect& region, double l, double w) {
  Rect out = Rect::Empty();
  ForEachQuadrantExtension(
      q, region, l, w, [&](const Rect& extended_frame, const QuadrantTransform& transform) {
        out.Expand(transform.Apply(extended_frame));
      });
  return out;
}

}  // namespace nwc
