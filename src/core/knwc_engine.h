#ifndef NWC_CORE_KNWC_ENGINE_H_
#define NWC_CORE_KNWC_ENGINE_H_

#include "common/cancel.h"
#include "common/io_stats.h"
#include "common/status.h"
#include "core/nwc_types.h"
#include "grid/density_grid.h"
#include "obs/query_trace.h"
#include "rtree/iwp_index.h"
#include "rtree/rstar_tree.h"

namespace nwc {

class WindowQueryMemo;

/// Answers kNWC queries (paper Sec. 3.4): k object groups, each of n
/// objects within an l x w window, pairwise sharing at most m objects,
/// ordered by ascending distance to q.
///
/// The engine runs the same incremental nearest-qualified-window search as
/// NwcEngine; each qualified group is offered to the Steps 1-5 maintenance
/// procedure of Sec. 3.4 (positional insert among the current k groups,
/// overlap check against nearer groups, eviction of farther groups that
/// overlap the new one too much). Once k groups are held, dist(q, objs_k)
/// replaces dist_best in the SRR and DIP pruning rules.
///
/// Like the paper's algorithm, the group list is maintained greedily in
/// discovery order: a group dropped for overlapping a nearer group is not
/// revisited if that nearer group is itself evicted later. Because windows
/// are discovered in (approximately) ascending distance, this matches the
/// greedy-by-distance semantics of Definition 3 in all but adversarial tie
/// structures.
class KnwcEngine {
 public:
  explicit KnwcEngine(const RStarTree& tree, const IwpIndex* iwp = nullptr,
                      const DensityGrid* grid = nullptr)
      : tree_(tree), iwp_(iwp), grid_(grid) {}

  /// Runs one kNWC query; see NwcEngine::Execute for the error contract,
  /// the tracing semantics (`trace` additionally captures the Steps 2-5
  /// overlap filtering as kOverlapFilter spans), the cooperative
  /// deadline/cancel/fault contract of `control`, and the batch
  /// window-query memo contract of `memo`.
  Result<KnwcResult> Execute(const KnwcQuery& query, const NwcOptions& options, IoCounter* io,
                             QueryTrace* trace = nullptr, QueryControl* control = nullptr,
                             WindowQueryMemo* memo = nullptr) const;

 private:
  const RStarTree& tree_;
  const IwpIndex* iwp_;
  const DensityGrid* grid_;
};

}  // namespace nwc

#endif  // NWC_CORE_KNWC_ENGINE_H_
