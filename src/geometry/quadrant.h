#ifndef NWC_GEOMETRY_QUADRANT_H_
#define NWC_GEOMETRY_QUADRANT_H_

#include "geometry/point.h"
#include "geometry/rect.h"

namespace nwc {

/// Quadrant of a point relative to the query location q (q is the origin).
/// Points on an axis are assigned to the quadrant with the non-negative
/// offset, i.e. the boundary belongs to quadrant I / IV (x) and I / II (y).
/// What matters for correctness is that the assignment is *consistent*: each
/// object gets exactly one vertical-edge role, and the canonical-window
/// argument (see core/search_region.h) holds for either convention.
enum class Quadrant {
  kFirst = 1,   ///< x >= q.x, y >= q.y -> p on the right edge, scan upward.
  kSecond = 2,  ///< x <  q.x, y >= q.y -> p on the left edge, scan upward.
  kThird = 3,   ///< x <  q.x, y <  q.y -> p on the left edge, scan downward.
  kFourth = 4,  ///< x >= q.x, y <  q.y -> p on the right edge, scan downward.
};

/// Returns the quadrant of `p` with `q` as origin, under the boundary
/// convention documented on Quadrant.
Quadrant QuadrantOf(const Point& q, const Point& p);

/// Reflection of the plane about the axes through the query point q.
///
/// Sections 3.1-3.3 of the paper describe the search-region construction,
/// the SRR shrink, and the DIP pruning region only for an object in the
/// first quadrant, handling "the other cases similarly". Rather than
/// writing four mirrored copies of every formula, the engine maps the
/// object (or node MBR) into the first quadrant with this transform,
/// applies the first-quadrant formula once, and maps results back. The
/// transform is an involution (Apply(Apply(x)) == x, up to floating-point
/// rounding) and preserves all Euclidean distances to q, so every
/// MINDIST-based bound is unchanged.
class QuadrantTransform {
 public:
  /// Identity transform about `q`.
  explicit QuadrantTransform(const Point& q) : q_(q), flip_x_(false), flip_y_(false) {}

  /// Builds the transform about `q` that maps `p` into the closed first
  /// quadrant (Apply(p).x >= q.x and Apply(p).y >= q.y).
  static QuadrantTransform MapToFirstQuadrant(const Point& q, const Point& p);

  /// Maps a point; an involution.
  Point Apply(const Point& p) const;

  /// Maps a rectangle (reflections swap min/max on flipped axes).
  Rect Apply(const Rect& r) const;

  /// The query point the transform reflects about.
  const Point& origin() const { return q_; }

  bool flips_x() const { return flip_x_; }
  bool flips_y() const { return flip_y_; }

 private:
  QuadrantTransform(const Point& q, bool flip_x, bool flip_y)
      : q_(q), flip_x_(flip_x), flip_y_(flip_y) {}

  Point q_;
  bool flip_x_;
  bool flip_y_;
};

}  // namespace nwc

#endif  // NWC_GEOMETRY_QUADRANT_H_
