#include "geometry/quadrant.h"

namespace nwc {

Quadrant QuadrantOf(const Point& q, const Point& p) {
  const bool right = p.x >= q.x;
  const bool up = p.y >= q.y;
  if (right && up) return Quadrant::kFirst;
  if (!right && up) return Quadrant::kSecond;
  if (!right && !up) return Quadrant::kThird;
  return Quadrant::kFourth;
}

QuadrantTransform QuadrantTransform::MapToFirstQuadrant(const Point& q, const Point& p) {
  return QuadrantTransform(q, p.x < q.x, p.y < q.y);
}

Point QuadrantTransform::Apply(const Point& p) const {
  Point out = p;
  if (flip_x_) out.x = 2.0 * q_.x - p.x;
  if (flip_y_) out.y = 2.0 * q_.y - p.y;
  return out;
}

Rect QuadrantTransform::Apply(const Rect& r) const {
  if (r.IsEmpty()) return r;
  const Point a = Apply(Point{r.min_x, r.min_y});
  const Point b = Apply(Point{r.max_x, r.max_y});
  return Rect::FromCorners(a, b);
}

}  // namespace nwc
