#include "geometry/rect.h"

#include <limits>

namespace nwc {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Rect Rect::Empty() {
  Rect r;
  r.min_x = kInf;
  r.min_y = kInf;
  r.max_x = -kInf;
  r.max_y = -kInf;
  return r;
}

Rect Rect::FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

Rect Rect::FromCorners(const Point& a, const Point& b) {
  return Rect{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x), std::max(a.y, b.y)};
}

Rect Rect::Window(const Point& origin, double l, double w) {
  return Rect{origin.x, origin.y, origin.x + l, origin.y + w};
}

double Rect::Area() const {
  if (IsEmpty()) return 0.0;
  return length() * width();
}

double Rect::Margin() const {
  if (IsEmpty()) return 0.0;
  return length() + width();
}

Point Rect::Center() const { return Point{(min_x + max_x) * 0.5, (min_y + max_y) * 0.5}; }

bool Rect::Contains(const Point& p) const {
  return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
}

bool Rect::Contains(const Rect& other) const {
  if (other.IsEmpty()) return true;
  return other.min_x >= min_x && other.max_x <= max_x && other.min_y >= min_y &&
         other.max_y <= max_y;
}

bool Rect::Intersects(const Rect& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return min_x <= other.max_x && other.min_x <= max_x && min_y <= other.max_y &&
         other.min_y <= max_y;
}

void Rect::Expand(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::Expand(const Rect& other) {
  if (other.IsEmpty()) return;
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.Expand(b);
  return out;
}

Rect Rect::Intersection(const Rect& a, const Rect& b) {
  if (!a.Intersects(b)) return Empty();
  return Rect{std::max(a.min_x, b.min_x), std::max(a.min_y, b.min_y), std::min(a.max_x, b.max_x),
              std::min(a.max_y, b.max_y)};
}

double Rect::OverlapArea(const Rect& other) const { return Intersection(*this, other).Area(); }

double Rect::EnlargementArea(const Rect& other) const {
  return Union(*this, other).Area() - Area();
}

Rect Rect::Inflated(double dx, double dy) const {
  if (IsEmpty()) return *this;
  return Rect{min_x - dx, min_y - dy, max_x + dx, max_y + dy};
}

double SquaredMinDist(const Point& q, const Rect& r) {
  if (r.IsEmpty()) return kInf;
  const double dx = std::max({r.min_x - q.x, 0.0, q.x - r.max_x});
  const double dy = std::max({r.min_y - q.y, 0.0, q.y - r.max_y});
  return dx * dx + dy * dy;
}

double MinDist(const Point& q, const Rect& r) { return std::sqrt(SquaredMinDist(q, r)); }

double MaxDist(const Point& q, const Rect& r) {
  if (r.IsEmpty()) return 0.0;
  const double dx = std::max(std::abs(q.x - r.min_x), std::abs(q.x - r.max_x));
  const double dy = std::max(std::abs(q.y - r.min_y), std::abs(q.y - r.max_y));
  return std::sqrt(dx * dx + dy * dy);
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.min_x << ", " << r.max_x << "] x [" << r.min_y << ", " << r.max_y << "]";
}

}  // namespace nwc
