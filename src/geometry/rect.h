#ifndef NWC_GEOMETRY_RECT_H_
#define NWC_GEOMETRY_RECT_H_

#include <algorithm>
#include <cmath>
#include <ostream>

#include "geometry/point.h"

namespace nwc {

/// An axis-aligned rectangle [min_x, max_x] x [min_y, max_y], used both as
/// the MBR of R*-tree entries and as query windows / search regions.
///
/// A Rect is *valid* when min <= max on both axes. The canonical empty
/// rectangle (from Rect::Empty()) has inverted infinite bounds so that
/// Expand() of an empty rect by a point/rect yields that point/rect.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// The canonical empty rectangle (identity element for Expand).
  static Rect Empty();

  /// Rectangle covering exactly one point.
  static Rect FromPoint(const Point& p);

  /// Rectangle from two opposite corners, in any order.
  static Rect FromCorners(const Point& a, const Point& b);

  /// Window of length `l` (x-extent) and width `w` (y-extent) whose
  /// bottom-left corner is `origin`. Matches the paper's (l, w) convention.
  static Rect Window(const Point& origin, double l, double w);

  /// True when this rect is the canonical empty rect or otherwise inverted.
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double length() const { return max_x - min_x; }  ///< x-extent (paper's l).
  double width() const { return max_y - min_y; }   ///< y-extent (paper's w).

  /// Area; 0 for degenerate (point/segment) rects. Empty rects yield 0.
  double Area() const;

  /// Half-perimeter (the R*-tree "margin" used by the split heuristic).
  double Margin() const;

  /// Center point of the rectangle.
  Point Center() const;

  /// True when `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True when `other` lies entirely inside or on the boundary of this rect.
  bool Contains(const Rect& other) const;

  /// True when the two rects share at least a boundary point.
  bool Intersects(const Rect& other) const;

  /// Grows this rect to cover `p`.
  void Expand(const Point& p);

  /// Grows this rect to cover `other` (no-op when `other` is empty).
  void Expand(const Rect& other);

  /// Returns the union MBR of the two rects.
  static Rect Union(const Rect& a, const Rect& b);

  /// Returns the intersection, or an empty rect when disjoint.
  static Rect Intersection(const Rect& a, const Rect& b);

  /// Area of overlap with `other` (0 when disjoint).
  double OverlapArea(const Rect& other) const;

  /// Area increase needed for this rect to cover `other`.
  double EnlargementArea(const Rect& other) const;

  /// Returns this rect grown by `dx` on both x sides and `dy` on both y
  /// sides (negative values shrink; the result may become empty).
  Rect Inflated(double dx, double dy) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x && a.max_y == b.max_y;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }
};

/// MINDIST(q, r): Euclidean distance from `q` to the nearest point of `r`
/// (0 when `q` is inside). This is the lower bound that drives best-first
/// traversal and all of the paper's pruning rules.
double MinDist(const Point& q, const Rect& r);

/// Squared MINDIST; cheaper for ordering comparisons.
double SquaredMinDist(const Point& q, const Rect& r);

/// MAXDIST(q, r): distance from `q` to the farthest point of `r`.
double MaxDist(const Point& q, const Rect& r);

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace nwc

#endif  // NWC_GEOMETRY_RECT_H_
