#ifndef NWC_GEOMETRY_POINT_H_
#define NWC_GEOMETRY_POINT_H_

#include <cmath>
#include <cstdint>
#include <ostream>

namespace nwc {

/// A point in the 2-D Euclidean data space. The paper (and therefore this
/// library) works in two dimensions; Sec. 2.1 notes the algorithms extend to
/// 3-D, which would only change this type and the Rect algebra.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) { return a.x == b.x && a.y == b.y; }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// Squared Euclidean distance between two points. Prefer this over
/// Distance() in hot comparisons; sqrt is monotone so orderings agree.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Identifier of a data object in a dataset. Object ids are dense indices
/// into the owning dataset's point vector.
using ObjectId = uint32_t;

/// A data object: an id plus its location. This is the unit stored in
/// R*-tree leaves and returned by NWC queries.
struct DataObject {
  ObjectId id = 0;
  Point pos;

  friend bool operator==(const DataObject& a, const DataObject& b) {
    return a.id == b.id && a.pos == b.pos;
  }
};

}  // namespace nwc

#endif  // NWC_GEOMETRY_POINT_H_
