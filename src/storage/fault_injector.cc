#include "storage/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace nwc {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kEveryNth:
      return "every_nth";
    case FaultKind::kOnceAt:
      return "once_at";
    case FaultKind::kBernoulli:
      return "bernoulli";
    case FaultKind::kLatencySpike:
      return "latency_spike";
  }
  return "unknown";
}

Status FaultPlan::Validate() const {
  switch (kind) {
    case FaultKind::kNone:
      return Status::Ok();
    case FaultKind::kEveryNth:
    case FaultKind::kOnceAt:
      if (period == 0) return Status::InvalidArgument("fault period/read index must be >= 1");
      return Status::Ok();
    case FaultKind::kBernoulli:
      if (!(probability > 0.0) || probability > 1.0) {
        return Status::InvalidArgument("fault probability must be in (0, 1]");
      }
      return Status::Ok();
    case FaultKind::kLatencySpike:
      if (period == 0) return Status::InvalidArgument("spike period must be >= 1");
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown fault kind");
}

std::string FaultPlan::ToSpec() const {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kEveryNth:
      return StrFormat("every:%llu", static_cast<unsigned long long>(period));
    case FaultKind::kOnceAt:
      return StrFormat("once:%llu", static_cast<unsigned long long>(period));
    case FaultKind::kBernoulli:
      return StrFormat("bernoulli:%g:%llu", probability, static_cast<unsigned long long>(seed));
    case FaultKind::kLatencySpike:
      return StrFormat("spike:%llu:%llu", static_cast<unsigned long long>(period),
                       static_cast<unsigned long long>(spike_micros));
  }
  return "unknown";
}

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  // Split on ':' into kind plus up to two numeric fields.
  std::string fields[3];
  size_t count = 0;
  size_t start = 0;
  while (count < 3) {
    const size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      fields[count++] = spec.substr(start);
      break;
    }
    fields[count++] = spec.substr(start, colon - start);
    start = colon + 1;
  }
  const std::string& kind = fields[0];
  FaultPlan plan;
  if (kind == "none") {
    if (count != 1) return Status::InvalidArgument("'none' takes no arguments");
    return plan;
  }
  if (kind == "every" || kind == "once") {
    if (count != 2) return Status::InvalidArgument("expected " + kind + ":N");
    const uint64_t n = std::strtoull(fields[1].c_str(), nullptr, 10);
    plan = kind == "every" ? FaultPlan::EveryNth(n) : FaultPlan::OnceAt(n);
  } else if (kind == "bernoulli") {
    if (count < 2) return Status::InvalidArgument("expected bernoulli:P[:SEED]");
    const double p = std::strtod(fields[1].c_str(), nullptr);
    const uint64_t seed = count == 3 ? std::strtoull(fields[2].c_str(), nullptr, 10) : 1;
    plan = FaultPlan::Bernoulli(p, seed);
  } else if (kind == "spike") {
    if (count != 3) return Status::InvalidArgument("expected spike:N:MICROS");
    plan = FaultPlan::LatencySpike(std::strtoull(fields[1].c_str(), nullptr, 10),
                                   std::strtoull(fields[2].c_str(), nullptr, 10));
  } else {
    return Status::InvalidArgument(
        "unknown fault spec '" + spec +
        "' (expected none, every:N, once:K, bernoulli:P[:SEED], or spike:N:MICROS)");
  }
  const Status valid = plan.Validate();
  if (!valid.ok()) return valid;
  return plan;
}

Status FaultInjector::OnRead(uint32_t page) {
  ++reads_;
  bool fault = false;
  switch (plan_.kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kEveryNth:
      fault = reads_ % plan_.period == 0;
      break;
    case FaultKind::kOnceAt:
      if (!fired_ && reads_ == plan_.period) {
        fired_ = true;
        fault = true;
      }
      break;
    case FaultKind::kBernoulli:
      fault = rng_.NextBernoulli(plan_.probability);
      break;
    case FaultKind::kLatencySpike:
      if (reads_ % plan_.period == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(plan_.spike_micros));
      }
      break;
  }
  if (!fault) return Status::Ok();
  ++faults_;
  return Status::IoError(StrFormat("injected %s fault at read %llu (page %u)",
                                   FaultKindName(plan_.kind),
                                   static_cast<unsigned long long>(reads_), page));
}

void FaultInjector::Reset() {
  reads_ = 0;
  faults_ = 0;
  fired_ = false;
  rng_ = Rng(plan_.seed);
}

}  // namespace nwc
