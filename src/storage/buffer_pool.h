#ifndef NWC_STORAGE_BUFFER_POOL_H_
#define NWC_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page.h"

namespace nwc {

/// LRU page-buffer simulation.
///
/// The paper's I/O metric counts every node visit (no caching). This class
/// is an *ablation extension*: bench/micro_rtree uses it to show how much of
/// the raw node-visit cost a small LRU buffer would absorb for each scheme,
/// which contextualizes the paper's "I/O cost dominates" claim on modern
/// stacks. It is not consulted by the reproduction benchmarks.
///
/// ThreadSafety: NOT thread-safe — Access() mutates the LRU list on every
/// call (even hits). A pool must never be shared across query-service
/// workers; QueryService enforces this by giving each worker its own pool
/// (or none), indexed by the worker id (see src/service/query_service.h).
class BufferPool {
 public:
  /// Creates a pool holding at most `capacity_pages` pages. A capacity of 0
  /// disables caching (every access misses).
  explicit BufferPool(size_t capacity_pages);

  /// Simulates an access to `page`. Returns true on a hit. On a miss the
  /// page is admitted, evicting the least recently used page if full.
  bool Access(PageId page);

  /// True when `page` currently resides in the pool (does not touch LRU).
  bool Contains(PageId page) const;

  /// Drops all cached pages and resets hit/miss counters.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Hit ratio in [0, 1]; 0 when no accesses were made.
  double HitRatio() const;

 private:
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Most recently used at the front.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

}  // namespace nwc

#endif  // NWC_STORAGE_BUFFER_POOL_H_
