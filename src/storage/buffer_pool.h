#ifndef NWC_STORAGE_BUFFER_POOL_H_
#define NWC_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#ifndef NDEBUG
#include <thread>
#endif

#include "storage/page.h"

namespace nwc {

/// LRU page-buffer simulation.
///
/// The paper's I/O metric counts every node visit (no caching). This class
/// is an *ablation extension*: bench/micro_rtree uses it to show how much of
/// the raw node-visit cost a small LRU buffer would absorb for each scheme,
/// which contextualizes the paper's "I/O cost dominates" claim on modern
/// stacks. It is not consulted by the reproduction benchmarks.
///
/// ThreadSafety: NOT thread-safe — Access() mutates the LRU list on every
/// call (even hits). A pool must never be shared across query-service
/// workers; QueryService enforces this by giving each worker its own pool
/// (or none), indexed by the worker id (see src/service/query_service.h):
/// ThreadPool binds each worker index to exactly one thread for the pool's
/// lifetime, so worker_pools_[worker_index] is only ever touched by that
/// thread — on the single-submit path and on the batch path alike (a batch
/// group job runs entirely on the worker that dequeued it).
///
/// Debug builds enforce the invariant directly: the first Access() binds
/// the pool to the calling thread and every later Access() asserts the
/// same thread, so a shared-pool misuse trips immediately instead of
/// surfacing as silent LRU corruption. Clear() unbinds (a pool may be
/// handed off between threads across a full reset, never concurrently).
class BufferPool {
 public:
  /// Creates a pool holding at most `capacity_pages` pages. A capacity of 0
  /// disables caching (every access misses).
  explicit BufferPool(size_t capacity_pages);

  /// Simulates an access to `page`. Returns true on a hit. On a miss the
  /// page is admitted, evicting the least recently used page if full.
  bool Access(PageId page);

  /// True when `page` currently resides in the pool (does not touch LRU).
  bool Contains(PageId page) const;

  /// Drops all cached pages and resets hit/miss counters.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Hit ratio in [0, 1]; 0 when no accesses were made.
  double HitRatio() const;

 private:
#ifndef NDEBUG
  /// Asserts the per-thread ownership invariant (debug builds only).
  void CheckOwner();
#endif

  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Most recently used at the front.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
#ifndef NDEBUG
  // Owner thread, bound by the first Access() after construction/Clear().
  std::thread::id owner_;
#endif
};

}  // namespace nwc

#endif  // NWC_STORAGE_BUFFER_POOL_H_
