#ifndef NWC_STORAGE_PAGE_H_
#define NWC_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace nwc {

/// Identifier of a simulated disk page. Every R*-tree node occupies exactly
/// one page (the paper's setup: 4096-byte pages, at most 50 entries/node).
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// Simulated page size in bytes (paper Sec. 5: "page size set to 4096").
inline constexpr size_t kPageSizeBytes = 4096;

/// Size of one on-page entry. A leaf entry is (x, y, object id) and an
/// internal entry is (mbr, child page id); both fit in 24 bytes with
/// 8-byte coordinates packed as in the serialized format. Used only by the
/// storage-overhead accounting, not by the in-memory layout.
inline constexpr size_t kEntryBytes = 24;

/// Size of one stored pointer, as assumed by the paper's Sec. 5.2 storage
/// accounting for IWP ("Suppose that the size of one pointer is 4 bytes").
inline constexpr size_t kPointerBytes = 4;

/// Maximum entries that fit a page under the accounting above. The paper
/// fixes the fanout at 50 regardless; kMaxEntriesDefault mirrors that.
inline constexpr int kMaxEntriesDefault = 50;

}  // namespace nwc

#endif  // NWC_STORAGE_PAGE_H_
