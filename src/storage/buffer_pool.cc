#include "storage/buffer_pool.h"

#include <cassert>

namespace nwc {

BufferPool::BufferPool(size_t capacity_pages) : capacity_(capacity_pages) {}

#ifndef NDEBUG
void BufferPool::CheckOwner() {
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
    return;
  }
  assert(owner_ == std::this_thread::get_id() &&
         "BufferPool accessed from a second thread: pools are per-worker, never shared");
}
#endif

bool BufferPool::Access(PageId page) {
#ifndef NDEBUG
  CheckOwner();
#endif
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (lru_.size() >= capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim);
  }
  lru_.push_front(page);
  index_[page] = lru_.begin();
  return false;
}

bool BufferPool::Contains(PageId page) const { return index_.find(page) != index_.end(); }

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
#ifndef NDEBUG
  owner_ = std::thread::id{};  // a full reset may hand the pool to a new thread
#endif
}

double BufferPool::HitRatio() const {
  const uint64_t total = hits_ + misses_;
  if (total == 0) return 0.0;
  return static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace nwc
