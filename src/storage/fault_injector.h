#ifndef NWC_STORAGE_FAULT_INJECTOR_H_
#define NWC_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace nwc {

/// Which deterministic fault schedule an injector follows.
enum class FaultKind : uint8_t {
  kNone = 0,       ///< never faults (the injector is a no-op)
  kEveryNth,       ///< every Nth counted read fails (persistent fault)
  kOnceAt,         ///< exactly read #K fails, once per injector (transient)
  kBernoulli,      ///< each read fails with probability p, seeded (transient)
  kLatencySpike,   ///< every Nth read sleeps spike_micros, none fail
};

/// Stable display name ("none", "every_nth", ...).
const char* FaultKindName(FaultKind kind);

/// A declarative fault-injection schedule. Schedules are fully determined
/// by their parameters (and seed), so a failing run is reproducible from
/// the logged plan alone — see EXPERIMENTS.md for the seed convention.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Period for kEveryNth / kLatencySpike; 1-based read index for kOnceAt.
  uint64_t period = 0;
  /// Per-read failure probability for kBernoulli.
  double probability = 0.0;
  /// RNG seed for kBernoulli (the stream is the injector's own; query
  /// randomness is never consumed).
  uint64_t seed = 0;
  /// Sleep per spiked read for kLatencySpike.
  uint64_t spike_micros = 0;

  bool enabled() const { return kind != FaultKind::kNone; }

  /// Rejects schedules with a zero period / out-of-range probability.
  Status Validate() const;

  /// Canonical spec string ("every:7", "bernoulli:0.05:42", ...), the
  /// inverse of ParseFaultPlan for logging.
  std::string ToSpec() const;

  static FaultPlan None() { return FaultPlan{}; }
  static FaultPlan EveryNth(uint64_t n) {
    return FaultPlan{FaultKind::kEveryNth, n, 0.0, 0, 0};
  }
  static FaultPlan OnceAt(uint64_t k) { return FaultPlan{FaultKind::kOnceAt, k, 0.0, 0, 0}; }
  static FaultPlan Bernoulli(double p, uint64_t seed) {
    return FaultPlan{FaultKind::kBernoulli, 0, p, seed, 0};
  }
  static FaultPlan LatencySpike(uint64_t n, uint64_t spike_micros) {
    return FaultPlan{FaultKind::kLatencySpike, n, 0.0, 0, spike_micros};
  }
};

/// Parses a --inject-faults style spec: "none", "every:N", "once:K",
/// "bernoulli:P[:SEED]", or "spike:N:MICROS".
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

/// Executes a FaultPlan against a stream of simulated page reads.
///
/// The injector is bound to IoCounter::SetReadProbe, so it sees exactly the
/// accesses the paper's metric counts as reads (buffer-pool hits are not
/// reads and cannot fail). OnRead() returns the typed IoError to inject for
/// that read — the caller routes it into the query's QueryControl, whose
/// checkpoints abort the search; nothing here throws or kills the process.
///
/// Determinism: the fault sequence is a pure function of the plan and the
/// read index (plus the plan seed for kBernoulli), so any observed failure
/// replays from the logged plan spec and read count.
///
/// ThreadSafety: NOT thread-safe — one injector per worker/query stream,
/// like BufferPool. QueryService gives each worker its own injector.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

  /// Accounts one counted page read and returns OK or the injected fault.
  /// kLatencySpike sleeps here (and still returns OK).
  Status OnRead(uint32_t page);

  /// Restarts the schedule (read counter, once-fired latch, RNG stream).
  void Reset();

  const FaultPlan& plan() const { return plan_; }
  /// Reads observed so far (monotonic until Reset).
  uint64_t reads() const { return reads_; }
  /// Faults returned so far.
  uint64_t faults_injected() const { return faults_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  uint64_t reads_ = 0;
  uint64_t faults_ = 0;
  bool fired_ = false;
};

}  // namespace nwc

#endif  // NWC_STORAGE_FAULT_INJECTOR_H_
