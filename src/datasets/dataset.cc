#include "datasets/dataset.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/string_util.h"

namespace nwc {

Rect Dataset::Bounds() const {
  Rect bounds = Rect::Empty();
  for (const DataObject& obj : objects) bounds.Expand(obj.pos);
  return bounds;
}

Rect NormalizedSpace() { return Rect{0.0, 0.0, kSpaceExtent, kSpaceExtent}; }

void NormalizeToSpace(std::vector<DataObject>& objects, const Rect& target) {
  Rect bounds = Rect::Empty();
  for (const DataObject& obj : objects) bounds.Expand(obj.pos);
  if (bounds.IsEmpty()) return;

  const auto scale_axis = [](double value, double src_lo, double src_hi, double dst_lo,
                             double dst_hi) {
    const double span = src_hi - src_lo;
    if (span <= 0.0) return (dst_lo + dst_hi) * 0.5;
    return dst_lo + (value - src_lo) / span * (dst_hi - dst_lo);
  };
  for (DataObject& obj : objects) {
    obj.pos.x = scale_axis(obj.pos.x, bounds.min_x, bounds.max_x, target.min_x, target.max_x);
    obj.pos.y = scale_axis(obj.pos.y, bounds.min_y, bounds.max_y, target.min_y, target.max_y);
  }
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  std::fprintf(file, "id,x,y\n");
  for (const DataObject& obj : dataset.objects) {
    std::fprintf(file, "%u,%.17g,%.17g\n", obj.id, obj.pos.x, obj.pos.y);
  }
  const bool ok = std::fclose(file) == 0;
  if (!ok) return Status::IoError(StrFormat("error closing %s", path.c_str()));
  return Status::Ok();
}

Result<Dataset> LoadDatasetCsv(const std::string& path, const std::string& name) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for reading", path.c_str()));
  }
  Dataset dataset;
  dataset.name = name;
  dataset.space = NormalizedSpace();

  char line[256];
  bool first = true;
  size_t line_number = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_number;
    if (first) {
      first = false;
      continue;  // header
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    DataObject obj;
    char* cursor = nullptr;
    obj.id = static_cast<ObjectId>(std::strtoul(trimmed.c_str(), &cursor, 10));
    if (cursor == nullptr || *cursor != ',') {
      std::fclose(file);
      return Status::IoError(StrFormat("%s:%zu: malformed row", path.c_str(), line_number));
    }
    obj.pos.x = std::strtod(cursor + 1, &cursor);
    if (cursor == nullptr || *cursor != ',') {
      std::fclose(file);
      return Status::IoError(StrFormat("%s:%zu: malformed row", path.c_str(), line_number));
    }
    obj.pos.y = std::strtod(cursor + 1, nullptr);
    dataset.objects.push_back(obj);
  }
  std::fclose(file);
  return dataset;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.cardinality = dataset.objects.size();
  stats.bounds = dataset.Bounds();
  if (dataset.objects.empty()) return stats;

  constexpr size_t kCells = 100;
  const Rect& space = dataset.space;
  const double cell_x = space.length() / kCells;
  const double cell_y = space.width() / kCells;
  std::unordered_map<size_t, size_t> histogram;
  for (const DataObject& obj : dataset.objects) {
    size_t cx = cell_x > 0.0 ? static_cast<size_t>((obj.pos.x - space.min_x) / cell_x) : 0;
    size_t cy = cell_y > 0.0 ? static_cast<size_t>((obj.pos.y - space.min_y) / cell_y) : 0;
    cx = std::min(cx, kCells - 1);
    cy = std::min(cy, kCells - 1);
    ++histogram[cy * kCells + cx];
  }

  std::vector<size_t> counts;
  counts.reserve(histogram.size());
  for (const auto& [cell, count] : histogram) {
    (void)cell;
    counts.push_back(count);
  }
  std::sort(counts.begin(), counts.end(), std::greater<size_t>());

  stats.occupied_cell_fraction =
      static_cast<double>(counts.size()) / static_cast<double>(kCells * kCells);
  stats.mean_occupied_cell_count =
      static_cast<double>(dataset.objects.size()) / static_cast<double>(counts.size());

  const size_t top = std::max<size_t>(1, counts.size() / 100);
  size_t top_mass = 0;
  for (size_t i = 0; i < top; ++i) top_mass += counts[i];
  stats.top1pct_mass = static_cast<double>(top_mass) / static_cast<double>(dataset.objects.size());
  return stats;
}

}  // namespace nwc
