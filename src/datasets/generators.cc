#include "datasets/generators.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace nwc {

namespace {

// Draws a point from N(center, stddev) re-drawn until inside `space`.
Point SampleClipped(Rng& rng, const Point& center, double stddev_x, double stddev_y,
                    const Rect& space) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Point p{rng.NextGaussian(center.x, stddev_x), rng.NextGaussian(center.y, stddev_y)};
    if (space.Contains(p)) return p;
  }
  // Pathological spec (center far outside the space): clamp instead.
  Point p{rng.NextGaussian(center.x, stddev_x), rng.NextGaussian(center.y, stddev_y)};
  p.x = std::min(std::max(p.x, space.min_x), space.max_x);
  p.y = std::min(std::max(p.y, space.min_y), space.max_y);
  return p;
}

}  // namespace

Dataset MakeUniform(size_t cardinality, uint64_t seed) {
  Rng rng(seed);
  Dataset dataset;
  dataset.name = "Uniform";
  dataset.space = NormalizedSpace();
  dataset.objects.reserve(cardinality);
  for (size_t i = 0; i < cardinality; ++i) {
    dataset.objects.push_back(DataObject{
        static_cast<ObjectId>(i),
        Point{rng.NextDouble(dataset.space.min_x, dataset.space.max_x),
              rng.NextDouble(dataset.space.min_y, dataset.space.max_y)}});
  }
  return dataset;
}

Dataset MakeGaussian(size_t cardinality, uint64_t seed, double mean, double stddev) {
  Rng rng(seed);
  Dataset dataset;
  dataset.name = "Gaussian";
  dataset.space = NormalizedSpace();
  dataset.objects.reserve(cardinality);
  const Point center{mean, mean};
  for (size_t i = 0; i < cardinality; ++i) {
    dataset.objects.push_back(DataObject{
        static_cast<ObjectId>(i), SampleClipped(rng, center, stddev, stddev, dataset.space)});
  }
  return dataset;
}

Dataset MakeClustered(const ClusteredSpec& spec, uint64_t seed, const std::string& name) {
  assert(!spec.clusters.empty() || spec.background_fraction >= 1.0);
  Rng rng(seed);
  Dataset dataset;
  dataset.name = name;
  dataset.space = NormalizedSpace();
  dataset.objects.reserve(spec.cardinality);

  // Cumulative weights for cluster selection.
  std::vector<double> cumulative;
  cumulative.reserve(spec.clusters.size());
  double total_weight = 0.0;
  for (const ClusterSpec& cluster : spec.clusters) {
    total_weight += cluster.weight;
    cumulative.push_back(total_weight);
  }

  for (size_t i = 0; i < spec.cardinality; ++i) {
    Point p;
    if (rng.NextBernoulli(spec.background_fraction) || spec.clusters.empty()) {
      p = Point{rng.NextDouble(dataset.space.min_x, dataset.space.max_x),
                rng.NextDouble(dataset.space.min_y, dataset.space.max_y)};
    } else {
      const double pick = rng.NextDouble(0.0, total_weight);
      size_t index = 0;
      while (index + 1 < cumulative.size() && cumulative[index] < pick) ++index;
      const ClusterSpec& cluster = spec.clusters[index];
      p = SampleClipped(rng, cluster.center, cluster.stddev_x, cluster.stddev_y, dataset.space);
    }
    dataset.objects.push_back(DataObject{static_cast<ObjectId>(i), p});
  }
  return dataset;
}

Dataset MakeCaLike(uint64_t seed, size_t cardinality) {
  Rng rng(seed ^ 0xCA11F07Ull);
  ClusteredSpec spec;
  spec.cardinality = cardinality;
  spec.background_fraction = 0.2;

  // Two diagonal bands of hotspots (coastal and inland corridors), with
  // hotspot spreads from town-sized to metro-sized.
  constexpr int kHotspotsPerBand = 30;
  for (int band = 0; band < 2; ++band) {
    for (int i = 0; i < kHotspotsPerBand; ++i) {
      const double t = (i + 0.5) / kHotspotsPerBand;
      ClusterSpec cluster;
      // Band 0 runs lower-left to upper-right near the edge; band 1 is
      // offset inland and shorter.
      const double along = 500.0 + 9000.0 * t;
      const double offset = band == 0 ? 1200.0 : 3200.0;
      cluster.center =
          Point{along + rng.NextGaussian(0.0, 300.0),
                along * 0.75 + offset + rng.NextGaussian(0.0, 400.0)};
      const double spread = 40.0 + 360.0 * rng.NextDouble();
      cluster.stddev_x = spread;
      cluster.stddev_y = spread * (0.6 + 0.8 * rng.NextDouble());
      // A few dominant metros: weight spans two orders of magnitude.
      cluster.weight = std::pow(10.0, 2.0 * rng.NextDouble());
      spec.clusters.push_back(cluster);
    }
  }
  Dataset dataset = MakeClustered(spec, seed, "CA-like");
  return dataset;
}

Dataset MakeNyLike(uint64_t seed, size_t cardinality) {
  Rng rng(seed ^ 0x0077E57Ull);
  ClusteredSpec spec;
  spec.cardinality = cardinality;
  spec.background_fraction = 0.02;

  // A few dominant metro concentrations...
  constexpr int kMetros = 5;
  Point metro_centers[kMetros];
  for (int m = 0; m < kMetros; ++m) {
    metro_centers[m] = Point{rng.NextDouble(1500.0, 8500.0), rng.NextDouble(1500.0, 8500.0)};
    ClusterSpec metro;
    metro.center = metro_centers[m];
    metro.stddev_x = 250.0;
    metro.stddev_y = 250.0;
    metro.weight = 60.0;
    spec.clusters.push_back(metro);
  }
  // ...surrounded by hundreds of very tight urban hotspots (street-grid
  // scale), most of them near a metro.
  constexpr int kHotspots = 400;
  for (int i = 0; i < kHotspots; ++i) {
    ClusterSpec hotspot;
    if (rng.NextBernoulli(0.7)) {
      const Point& metro = metro_centers[rng.NextUint64(kMetros)];
      hotspot.center = Point{metro.x + rng.NextGaussian(0.0, 700.0),
                             metro.y + rng.NextGaussian(0.0, 700.0)};
    } else {
      hotspot.center = Point{rng.NextDouble(200.0, 9800.0), rng.NextDouble(200.0, 9800.0)};
    }
    const double spread = 5.0 + 25.0 * rng.NextDouble();
    hotspot.stddev_x = spread;
    hotspot.stddev_y = spread;
    hotspot.weight = 0.5 + 2.0 * rng.NextDouble();
    spec.clusters.push_back(hotspot);
  }
  return MakeClustered(spec, seed, "NY-like");
}

}  // namespace nwc
