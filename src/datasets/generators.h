#ifndef NWC_DATASETS_GENERATORS_H_
#define NWC_DATASETS_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "datasets/dataset.h"

namespace nwc {

/// Uniform dataset over the normalized 10,000-unit square.
Dataset MakeUniform(size_t cardinality, uint64_t seed);

/// The paper's synthetic dataset (Sec. 5): `cardinality` points (default
/// 250,000) with both coordinates drawn i.i.d. from N(mean, stddev)
/// (defaults 5,000 / 2,000), re-drawn until they fall inside the
/// normalized square (so clipping does not pile mass on the boundary).
Dataset MakeGaussian(size_t cardinality, uint64_t seed, double mean = 5000.0,
                     double stddev = 2000.0);

/// One hotspot of a clustered dataset.
struct ClusterSpec {
  Point center;
  double stddev_x = 0.0;
  double stddev_y = 0.0;
  double weight = 1.0;  ///< relative share of the clustered mass
};

/// Parameters for the generic multi-cluster generator.
struct ClusteredSpec {
  size_t cardinality = 0;
  /// Fraction of objects drawn uniformly over the space (background
  /// noise); the rest are distributed over the clusters by weight.
  double background_fraction = 0.0;
  std::vector<ClusterSpec> clusters;
};

/// Mixture-of-Gaussians dataset over the normalized square: each non-
/// background point picks a cluster by weight and samples around its
/// center (re-drawn until inside the space).
Dataset MakeClustered(const ClusteredSpec& spec, uint64_t seed, const std::string& name);

/// Stand-in for the paper's CA dataset (62,556 real places in California;
/// unavailable offline — see DESIGN.md). Moderately clustered: ~60
/// hotspots of varied spread placed along two diagonal bands (the coastal
/// and inland corridors) over a 20% uniform background. Matches the
/// evaluation-relevant properties: cardinality and a medium degree of
/// clustering.
Dataset MakeCaLike(uint64_t seed, size_t cardinality = 62556);

/// Stand-in for the paper's NY dataset (255,259 real places in New York).
/// Extremely clustered, the property the paper repeatedly attributes to
/// NY: ~400 very tight urban hotspots hold 97% of the mass, with a few
/// dominant metro concentrations.
Dataset MakeNyLike(uint64_t seed, size_t cardinality = 255259);

}  // namespace nwc

#endif  // NWC_DATASETS_GENERATORS_H_
