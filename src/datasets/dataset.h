#ifndef NWC_DATASETS_DATASET_H_
#define NWC_DATASETS_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace nwc {

/// A named collection of data objects in a common data space. The paper
/// normalizes every dataset to a square of width 10,000 (Sec. 5); Space()
/// returns that square for generated datasets.
struct Dataset {
  std::string name;
  Rect space;  ///< the normalized data space (not the tight bounds)
  std::vector<DataObject> objects;

  size_t size() const { return objects.size(); }

  /// Tight bounding rectangle of the stored objects.
  Rect Bounds() const;
};

/// The paper's normalized data-space extent ("normalized to a square of
/// width 10,000").
inline constexpr double kSpaceExtent = 10000.0;

/// The normalized data space [0, 10000]^2.
Rect NormalizedSpace();

/// Rescales `objects` in place so their bounds map onto `target` (aspect
/// ratio is not preserved — each axis is scaled independently, matching
/// the usual normalization of the CA/NY datasets to a square). Degenerate
/// axes map to the target midpoint.
void NormalizeToSpace(std::vector<DataObject>& objects, const Rect& target);

/// Writes a dataset as CSV lines "id,x,y" with a one-line header.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDatasetCsv. `space` is set to the
/// normalized space; callers working with un-normalized data should use
/// Bounds() instead.
Result<Dataset> LoadDatasetCsv(const std::string& path, const std::string& name);

/// Summary statistics used by the Table 2 reproduction and the generator
/// tests: cardinality plus a clustering measure.
struct DatasetStats {
  size_t cardinality = 0;
  Rect bounds;
  /// Mean objects per occupied cell of a 100x100 histogram.
  double mean_occupied_cell_count = 0.0;
  /// Fraction of the 100x100 histogram cells that are occupied; lower
  /// means more clustered mass.
  double occupied_cell_fraction = 0.0;
  /// Fraction of all objects in the densest 1% of occupied cells; higher
  /// means more extreme hotspots (the NY signature).
  double top1pct_mass = 0.0;
};

/// Computes DatasetStats over the dataset's space.
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace nwc

#endif  // NWC_DATASETS_DATASET_H_
