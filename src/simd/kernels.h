#ifndef NWC_SIMD_KERNELS_H_
#define NWC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geometry/point.h"
#include "geometry/rect.h"

/// Vectorized hot-path kernels over structure-of-arrays data.
///
/// The per-object work of every query algorithm — window containment over
/// leaf points, point-to-query distances for the best-first traversal, and
/// MINDIST-to-rect over child MBRs — runs through this layer. Each kernel
/// exists twice: a scalar implementation (built from the exact same
/// geometry primitives the query code used before this layer existed) and
/// an AVX2 implementation compiled into a separate translation unit with
/// -mavx2. Which one runs is decided once per process by runtime CPUID
/// dispatch; the scalar build is kept forever as the differential oracle.
///
/// Bit-exactness contract: for identical inputs the AVX2 kernels return
/// bit-identical outputs to the scalar kernels. Both translation units are
/// compiled with -ffp-contract=off (no FMA fusion), AVX2 lane operations
/// (add/sub/mul/max/sqrt/compare) are IEEE-754 exact or correctly rounded
/// exactly like their scalar counterparts, and every kernel performs the
/// same operations in the same per-element order. The differential test
/// suite and the micro-bench --smoke gate enforce this.
///
/// Escape hatch: setting the environment variable NWC_DISABLE_AVX2 (to any
/// value other than "0" or empty) forces the scalar kernels regardless of
/// CPU support; SetDispatchMode() does the same programmatically for tests.
namespace nwc::simd {

/// Function table of one kernel implementation set.
struct KernelOps {
  /// Number of points (xs[i], ys[i]) inside `window`, boundary inclusive.
  size_t (*count_in_window)(const double* xs, const double* ys, size_t count,
                            const Rect& window);
  /// Writes the indices of the points inside `window` to `out_indices` in
  /// ascending index order; returns how many were written. `out_indices`
  /// must have room for `count` entries.
  size_t (*collect_in_window)(const double* xs, const double* ys, size_t count,
                              const Rect& window, uint32_t* out_indices);
  /// out[i] = Distance(q, {xs[i], ys[i]}).
  void (*batch_distance)(const Point& q, const double* xs, const double* ys, size_t count,
                         double* out);
  /// out[i] = Distance(q, objects[i].pos) over an array-of-structs span.
  void (*batch_distance_points)(const Point& q, const DataObject* objects, size_t count,
                                double* out);
  /// out[i] = MinDist(q, rect_i) where rect_i lives at
  /// `stride_bytes * i` past `first` (strided so child-MBR arrays whose
  /// elements embed a Rect as their first member can be scanned in place).
  void (*batch_min_dist)(const Point& q, const Rect* first, size_t stride_bytes, size_t count,
                         double* out);
  /// Human-readable implementation name ("scalar", "avx2").
  const char* name;
};

/// The scalar implementation set — the differential oracle.
const KernelOps& ScalarOps();

/// The AVX2 implementation set, or nullptr when the binary was built
/// without AVX2 support or the CPU lacks it.
const KernelOps* Avx2OpsOrNull();

/// True when the AVX2 kernels are compiled in and the CPU supports them
/// (independent of the dispatch mode / escape hatch).
bool Avx2Supported();

/// Dispatch policy. kAuto picks AVX2 when supported (unless the
/// NWC_DISABLE_AVX2 environment variable is set); kForceScalar always runs
/// the oracle.
enum class DispatchMode { kAuto, kForceScalar };

/// Overrides the dispatch decision process-wide. Intended for tests and
/// the scalar-fallback CI leg; not meant to be flipped while queries are
/// in flight (the switch itself is atomic, but in-flight queries may mix
/// implementations — harmless, since both are bit-exact, just confusing
/// to benchmark).
void SetDispatchMode(DispatchMode mode);
DispatchMode GetDispatchMode();

/// The implementation set queries run on under the current mode.
const KernelOps& Ops();

/// Name of the active implementation ("avx2" or "scalar").
const char* ActiveKernelName();

// Convenience wrappers through the active dispatch table.
inline size_t CountInWindow(const double* xs, const double* ys, size_t count,
                            const Rect& window) {
  return Ops().count_in_window(xs, ys, count, window);
}
inline size_t CollectInWindow(const double* xs, const double* ys, size_t count,
                              const Rect& window, uint32_t* out_indices) {
  return Ops().collect_in_window(xs, ys, count, window, out_indices);
}
inline void BatchDistance(const Point& q, const double* xs, const double* ys, size_t count,
                          double* out) {
  Ops().batch_distance(q, xs, ys, count, out);
}
inline void BatchDistancePoints(const Point& q, const DataObject* objects, size_t count,
                                double* out) {
  Ops().batch_distance_points(q, objects, count, out);
}
inline void BatchMinDist(const Point& q, const Rect* first, size_t stride_bytes, size_t count,
                         double* out) {
  Ops().batch_min_dist(q, first, stride_bytes, count, out);
}

}  // namespace nwc::simd

#endif  // NWC_SIMD_KERNELS_H_
