// AVX2 implementations of the hot-path kernels. This translation unit is
// the only one compiled with -mavx2; nothing here runs unless runtime
// CPUID dispatch (kernels.cc) selected it, so the rest of the binary stays
// executable on any x86-64.
//
// Bit-exactness vs the scalar oracle is the design constraint, not an
// afterthought:
//  * compiled with -ffp-contract=off and -mno-fma so dx*dx + dy*dy is a
//    multiply followed by an add in both implementations (FMA's single
//    rounding would diverge from the scalar oracle's two);
//  * _mm256_{add,sub,mul,sqrt}_pd are IEEE-754 correctly rounded, exactly
//    like their scalar counterparts;
//  * _mm256_max_pd picks the same *value* as std::max for the non-NaN
//    inputs these kernels see — it may differ on the sign of a zero, but
//    every max result here is squared immediately, which erases the sign;
//  * comparisons (_CMP_GE_OQ / _CMP_LE_OQ) are exact predicates with the
//    same semantics as the scalar <= / >= they replace.
// The remainder of each span (count % 4) runs through the same inline
// geometry primitives the scalar kernels use.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

#include "simd/kernels.h"

namespace nwc::simd::avx2_impl {

// Namespace-scope const would otherwise give kOps internal linkage; the
// dispatcher in kernels.cc resolves it as an extern symbol.
extern const KernelOps kOps;

namespace {

// Lane mask of points inside the window, boundary inclusive (lane i maps
// to point i of the 4-point block).
inline int ContainsMask(__m256d xs, __m256d ys, __m256d min_x, __m256d max_x, __m256d min_y,
                        __m256d max_y) {
  const __m256d in_x = _mm256_and_pd(_mm256_cmp_pd(xs, min_x, _CMP_GE_OQ),
                                     _mm256_cmp_pd(xs, max_x, _CMP_LE_OQ));
  const __m256d in_y = _mm256_and_pd(_mm256_cmp_pd(ys, min_y, _CMP_GE_OQ),
                                     _mm256_cmp_pd(ys, max_y, _CMP_LE_OQ));
  return _mm256_movemask_pd(_mm256_and_pd(in_x, in_y));
}

}  // namespace

size_t CountInWindow(const double* xs, const double* ys, size_t count, const Rect& window) {
  const __m256d min_x = _mm256_set1_pd(window.min_x);
  const __m256d max_x = _mm256_set1_pd(window.max_x);
  const __m256d min_y = _mm256_set1_pd(window.min_y);
  const __m256d max_y = _mm256_set1_pd(window.max_y);
  size_t hits = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const int mask = ContainsMask(_mm256_loadu_pd(xs + i), _mm256_loadu_pd(ys + i), min_x,
                                  max_x, min_y, max_y);
    hits += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; i < count; ++i) {
    if (window.Contains(Point{xs[i], ys[i]})) ++hits;
  }
  return hits;
}

size_t CollectInWindow(const double* xs, const double* ys, size_t count, const Rect& window,
                       uint32_t* out_indices) {
  const __m256d min_x = _mm256_set1_pd(window.min_x);
  const __m256d max_x = _mm256_set1_pd(window.max_x);
  const __m256d min_y = _mm256_set1_pd(window.min_y);
  const __m256d max_y = _mm256_set1_pd(window.max_y);
  size_t hits = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    unsigned mask = static_cast<unsigned>(ContainsMask(
        _mm256_loadu_pd(xs + i), _mm256_loadu_pd(ys + i), min_x, max_x, min_y, max_y));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out_indices[hits++] = static_cast<uint32_t>(i + lane);
      mask &= mask - 1;
    }
  }
  for (; i < count; ++i) {
    if (window.Contains(Point{xs[i], ys[i]})) out_indices[hits++] = static_cast<uint32_t>(i);
  }
  return hits;
}

void BatchDistance(const Point& q, const double* xs, const double* ys, size_t count,
                   double* out) {
  const __m256d qx = _mm256_set1_pd(q.x);
  const __m256d qy = _mm256_set1_pd(q.y);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d dx = _mm256_sub_pd(qx, _mm256_loadu_pd(xs + i));
    const __m256d dy = _mm256_sub_pd(qy, _mm256_loadu_pd(ys + i));
    const __m256d sq = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(sq));
  }
  for (; i < count; ++i) {
    out[i] = Distance(q, Point{xs[i], ys[i]});
  }
}

void BatchDistancePoints(const Point& q, const DataObject* objects, size_t count, double* out) {
  const __m256d qx = _mm256_set1_pd(q.x);
  const __m256d qy = _mm256_set1_pd(q.y);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d px = _mm256_set_pd(objects[i + 3].pos.x, objects[i + 2].pos.x,
                                     objects[i + 1].pos.x, objects[i].pos.x);
    const __m256d py = _mm256_set_pd(objects[i + 3].pos.y, objects[i + 2].pos.y,
                                     objects[i + 1].pos.y, objects[i].pos.y);
    const __m256d dx = _mm256_sub_pd(qx, px);
    const __m256d dy = _mm256_sub_pd(qy, py);
    const __m256d sq = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(sq));
  }
  for (; i < count; ++i) {
    out[i] = Distance(q, objects[i].pos);
  }
}

void BatchMinDist(const Point& q, const Rect* first, size_t stride_bytes, size_t count,
                  double* out) {
  const char* base = reinterpret_cast<const char*>(first);
  const __m256d qx = _mm256_set1_pd(q.x);
  const __m256d qy = _mm256_set1_pd(q.y);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d inf = _mm256_set1_pd(__builtin_inf());
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // Load four {min_x, min_y, max_x, max_y} rects and transpose them into
    // one register per coordinate.
    const __m256d r0 = _mm256_loadu_pd(
        reinterpret_cast<const double*>(base + (i + 0) * stride_bytes));
    const __m256d r1 = _mm256_loadu_pd(
        reinterpret_cast<const double*>(base + (i + 1) * stride_bytes));
    const __m256d r2 = _mm256_loadu_pd(
        reinterpret_cast<const double*>(base + (i + 2) * stride_bytes));
    const __m256d r3 = _mm256_loadu_pd(
        reinterpret_cast<const double*>(base + (i + 3) * stride_bytes));
    const __m256d lo01 = _mm256_unpacklo_pd(r0, r1);  // [minx0 minx1 | maxx0 maxx1]
    const __m256d hi01 = _mm256_unpackhi_pd(r0, r1);  // [miny0 miny1 | maxy0 maxy1]
    const __m256d lo23 = _mm256_unpacklo_pd(r2, r3);
    const __m256d hi23 = _mm256_unpackhi_pd(r2, r3);
    const __m256d min_x = _mm256_permute2f128_pd(lo01, lo23, 0x20);
    const __m256d max_x = _mm256_permute2f128_pd(lo01, lo23, 0x31);
    const __m256d min_y = _mm256_permute2f128_pd(hi01, hi23, 0x20);
    const __m256d max_y = _mm256_permute2f128_pd(hi01, hi23, 0x31);

    // dx = max(min_x - qx, 0, qx - max_x); any sign-of-zero difference vs
    // std::max is erased by the square. Same for dy.
    const __m256d dx = _mm256_max_pd(_mm256_max_pd(_mm256_sub_pd(min_x, qx), zero),
                                     _mm256_sub_pd(qx, max_x));
    const __m256d dy = _mm256_max_pd(_mm256_max_pd(_mm256_sub_pd(min_y, qy), zero),
                                     _mm256_sub_pd(qy, max_y));
    __m256d sq = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    // Empty (inverted) rects report +inf, matching scalar SquaredMinDist.
    const __m256d empty = _mm256_or_pd(_mm256_cmp_pd(min_x, max_x, _CMP_GT_OQ),
                                       _mm256_cmp_pd(min_y, max_y, _CMP_GT_OQ));
    sq = _mm256_blendv_pd(sq, inf, empty);
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(sq));
  }
  for (; i < count; ++i) {
    const Rect* rect = reinterpret_cast<const Rect*>(base + i * stride_bytes);
    out[i] = MinDist(q, *rect);
  }
}

bool CpuSupportsAvx2() { return __builtin_cpu_supports("avx2"); }

const KernelOps kOps = {
    &CountInWindow, &CollectInWindow, &BatchDistance, &BatchDistancePoints, &BatchMinDist,
    "avx2",
};

}  // namespace nwc::simd::avx2_impl

#endif  // defined(__AVX2__)
