#include "simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace nwc::simd {

namespace scalar_impl {

// The scalar kernels are the differential oracle: they are written in
// terms of the same inline geometry primitives (Rect::Contains, Distance,
// SquaredMinDist) the query algorithms called directly before the kernel
// layer existed, and this translation unit is compiled with
// -ffp-contract=off, so their results are the historical results.

size_t CountInWindow(const double* xs, const double* ys, size_t count, const Rect& window) {
  size_t hits = 0;
  for (size_t i = 0; i < count; ++i) {
    if (window.Contains(Point{xs[i], ys[i]})) ++hits;
  }
  return hits;
}

size_t CollectInWindow(const double* xs, const double* ys, size_t count, const Rect& window,
                       uint32_t* out_indices) {
  size_t hits = 0;
  for (size_t i = 0; i < count; ++i) {
    if (window.Contains(Point{xs[i], ys[i]})) out_indices[hits++] = static_cast<uint32_t>(i);
  }
  return hits;
}

void BatchDistance(const Point& q, const double* xs, const double* ys, size_t count,
                   double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = Distance(q, Point{xs[i], ys[i]});
  }
}

void BatchDistancePoints(const Point& q, const DataObject* objects, size_t count, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = Distance(q, objects[i].pos);
  }
}

void BatchMinDist(const Point& q, const Rect* first, size_t stride_bytes, size_t count,
                  double* out) {
  const char* base = reinterpret_cast<const char*>(first);
  for (size_t i = 0; i < count; ++i) {
    const Rect* rect = reinterpret_cast<const Rect*>(base + i * stride_bytes);
    out[i] = MinDist(q, *rect);
  }
}

}  // namespace scalar_impl

const KernelOps& ScalarOps() {
  static constexpr KernelOps kOps = {
      &scalar_impl::CountInWindow,  &scalar_impl::CollectInWindow,
      &scalar_impl::BatchDistance,  &scalar_impl::BatchDistancePoints,
      &scalar_impl::BatchMinDist,   "scalar",
  };
  return kOps;
}

#if defined(NWC_HAVE_AVX2_KERNELS)
namespace avx2_impl {
// Defined in kernels_avx2.cc (compiled with -mavx2).
extern const KernelOps kOps;
bool CpuSupportsAvx2();
}  // namespace avx2_impl
#endif

const KernelOps* Avx2OpsOrNull() {
#if defined(NWC_HAVE_AVX2_KERNELS)
  if (avx2_impl::CpuSupportsAvx2()) return &avx2_impl::kOps;
#endif
  return nullptr;
}

bool Avx2Supported() { return Avx2OpsOrNull() != nullptr; }

namespace {

// True when NWC_DISABLE_AVX2 is set to anything but "" or "0"; read once.
bool DisabledByEnv() {
  static const bool disabled = [] {
    const char* value = std::getenv("NWC_DISABLE_AVX2");
    return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
  }();
  return disabled;
}

std::atomic<DispatchMode> g_mode{DispatchMode::kAuto};

}  // namespace

void SetDispatchMode(DispatchMode mode) { g_mode.store(mode, std::memory_order_release); }

DispatchMode GetDispatchMode() { return g_mode.load(std::memory_order_acquire); }

const KernelOps& Ops() {
  if (GetDispatchMode() == DispatchMode::kForceScalar || DisabledByEnv()) return ScalarOps();
  const KernelOps* avx2 = Avx2OpsOrNull();
  return avx2 != nullptr ? *avx2 : ScalarOps();
}

const char* ActiveKernelName() { return Ops().name; }

}  // namespace nwc::simd
