// nwc_tool — command-line front end for the library.
//
// Subcommands:
//   generate --kind=<uniform|gaussian|ca|ny> --count=N --seed=S --out=F.csv
//       Write a synthetic dataset as CSV.
//   build    --data=F.csv --out=F.nwctree [--max-entries=50] [--str]
//       Build an R*-tree over a CSV dataset and save it.
//   query    --index=F.nwctree --q=X,Y --l=L --w=W --n=N
//            [--scheme=<plain|srr|dip|dep|iwp|plus|star>]
//            [--measure=<min|max|avg|nearest>] [--data=F.csv]
//       Run one NWC query and print the group plus the I/O cost.
//       (--data is required for schemes using DEP, to build the grid.)
//   knwc     --index=F.nwctree --q=X,Y --l=L --w=W --n=N --k=K --m=M
//            [--scheme=...] [--data=F.csv]
//       Run one kNWC query.
//   stats    --index=F.nwctree
//       Print index statistics.
//   serve-batch --index=F.nwctree --queries=F.txt [--threads=4] [--queue=256]
//            [--scheme=...] [--measure=...] [--pool-pages=0] [--print]
//            [--metrics-json=F.json] [--prom=F.prom]
//            [--trace-dir=DIR] [--slow-us=N] [--trace-ring=32]
//            [--deadline-us=N] [--inject-faults=SPEC] [--shed-watermark=N]
//            [--retries=N] [--retry-backoff-us=100]
//            [--cache-mb=N] [--batch] [--batch-group=16]
//       Replay a query file through the concurrent QueryService across N
//       worker threads and print a metrics report (throughput, latency
//       quantiles, merged per-phase I/O). The query file holds one query
//       per line — "nwc X Y L W N" or "knwc X Y L W N K M" — with '#'
//       comments; the density grid / IWP index needed by the scheme are
//       built from the loaded tree itself, so no --data file is needed.
//       --metrics-json / --prom dump the final MetricsSnapshot as JSON /
//       Prometheus text. --trace-dir (or --slow-us) turns on per-query
//       tracing: queries at or over --slow-us microseconds (0 = all) are
//       retained in a --trace-ring-capacity ring and written to DIR as
//       Chrome trace-event JSON, one file per query.
//       Robustness knobs: --deadline-us bounds each query from submit
//       (DeadlineExceeded past it); --inject-faults runs a deterministic
//       fault schedule against the page reads ("every:N", "once:K",
//       "bernoulli:P[:SEED]", "spike:N:MICROS" — see storage/
//       fault_injector.h); --shed-watermark sheds blocking submits past
//       that queue depth; --retries / --retry-backoff-us retry transient
//       I/O faults with exponential backoff.
//       Caching & batching: --cache-mb gives the service a sharded result
//       cache of that many MiB (repeat queries answer from it with zero
//       tree reads; the metrics report shows hits/misses/evictions);
//       --batch submits the whole file through SubmitNwcBatch /
//       SubmitKnwcBatch, which groups compatible queries by Z-order
//       locality (at most --batch-group per group) so each worker reuses
//       memoized window walks. Results are bit-identical either way.
//       Dynamic data: --mutations=F.txt replays a mutation file (one
//       "insert ID X Y" / "delete ID X Y" per line, "---" closing a
//       batch) interleaved with the query stream through an MVCC
//       SnapshotStore — each batch applies and publishes a new epoch
//       after every --mutate-every queries (default: spread evenly).
//       --iwp-staleness=N lets published snapshots omit the IWP for up
//       to N mutations since its last build (queries degrade to
//       SRR+DIP+DEP for those epochs). Incompatible with --batch (the
//       batch planner snapshots the whole file up front).
//       Sharded serving: --shards=N splits the tree into N Z-order range
//       shards behind a ShardRouter (one session + service per shard).
//       Requires --shard-max-l/--shard-max-w (upper bounds on any query's
//       window dims; larger queries are rejected). --shard-halo=F scales
//       the halo replication band, --shard-partial=<fail|degrade> picks
//       the partial-failure policy, and --fault-shard=S scopes
//       --inject-faults to one shard. Incompatible with --batch (the
//       planned batch APIs are single-tree).
//   serve    --index=F.nwctree [--host=127.0.0.1] [--port=0]
//            [--threads=4] [--queue=256] [--scheme=...] [--measure=...]
//            [--no-iwp] [--no-grid] [--max-frame-bytes=1048576]
//            [--deadline-us=N] [--shed-watermark=N] [--cache-mb=N]
//            [--dynamic] [--iwp-staleness=N]
//            [--metrics-json=F.json] [--prom=F.prom]
//       Serve NWC/kNWC queries over TCP (the binary frame protocol of
//       src/net/wire.h) until SIGINT/SIGTERM, then drain gracefully:
//       stop accepting, finish in-flight queries (deadlines still
//       apply), flush every response, print the final metrics report,
//       exit 0. --port=0 picks an ephemeral port (printed on startup as
//       "listening on HOST:PORT"). GET /metrics on the same port
//       answers with the Prometheus exposition. Unlike serve-batch the
//       session builds the IWP index and density grid by default so
//       clients may override the scheme per request; --no-iwp /
//       --no-grid trade that flexibility for startup time and memory.
//       Drive it with nwc_load (open-loop QPS, pipelined connections).
//       --dynamic serves from an MVCC SnapshotStore so clients may send
//       kUpdateRequest frames (insert/delete batches); each batch
//       publishes a new epoch that later queries observe while in-flight
//       ones keep their snapshot. --iwp-staleness as in serve-batch.
//       --shards=N (with --shard-max-l/--shard-max-w and the other
//       --shard-* knobs, as in serve-batch) serves from a ShardRouter
//       over N Z-order range shards; /metrics then includes per-shard
//       nwc_shard_* series alongside the aggregated families.
//   trace    --index=F.nwctree --q=X,Y --l=L --w=W --n=N [--k=K --m=M]
//            [--scheme=...] [--measure=...] [--data=F.csv]
//            [--format=<chrome|jsonl>] [--out=F.json]
//       Run one NWC (or, with --k, kNWC) query with tracing enabled and
//       emit the trace: Chrome trace-event JSON (open in Perfetto /
//       chrome://tracing) or JSONL for scripts. Without --out the trace
//       goes to stdout; with --out a human summary (spans, pruning
//       counters, per-phase reads) is printed instead.
//
// Example session:
//   nwc_tool generate --kind=ca --out=/tmp/ca.csv
//   nwc_tool build --data=/tmp/ca.csv --out=/tmp/ca.nwctree --str
//   nwc_tool query --index=/tmp/ca.nwctree --data=/tmp/ca.csv
//       --q=5000,5000 --l=64 --w=64 --n=8 --scheme=star
//   nwc_tool trace --index=/tmp/ca.nwctree --data=/tmp/ca.csv
//       --q=5000,5000 --l=64 --w=64 --n=8 --scheme=star --out=/tmp/q.json

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/knwc_engine.h"
#include "core/nwc_engine.h"
#include "datasets/dataset.h"
#include "datasets/generators.h"
#include "grid/density_grid.h"
#include "net/server.h"
#include "net/shutdown_signal.h"
#include "obs/prometheus.h"
#include "obs/query_trace.h"
#include "obs/trace_export.h"
#include "rtree/bulk_load.h"
#include "rtree/iwp_index.h"
#include "rtree/serialize.h"
#include "rtree/tree_stats.h"
#include "rtree/validate.h"
#include "service/query_service.h"
#include "service/session.h"
#include "service/shard_router.h"
#include "service/workload.h"

namespace nwc {
namespace {

// --key=value argument bag.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        values_[std::string(arg + 2)] = "true";
      } else {
        values_[std::string(arg + 2, eq)] = std::string(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  long GetLong(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Result<NwcOptions> ParseOptions(const Args& args) {
  NwcOptions options;
  const std::string scheme = args.Get("scheme", "star");
  if (scheme == "plain") {
    options = NwcOptions::Plain();
  } else if (scheme == "srr") {
    options = NwcOptions::Srr();
  } else if (scheme == "dip") {
    options = NwcOptions::Dip();
  } else if (scheme == "dep") {
    options = NwcOptions::Dep();
  } else if (scheme == "iwp") {
    options = NwcOptions::Iwp();
  } else if (scheme == "plus") {
    options = NwcOptions::Plus();
  } else if (scheme == "star") {
    options = NwcOptions::Star();
  } else {
    return Status::InvalidArgument("unknown --scheme " + scheme);
  }
  const std::string measure = args.Get("measure", "nearest");
  if (measure == "min") {
    options.measure = DistanceMeasure::kMin;
  } else if (measure == "max") {
    options.measure = DistanceMeasure::kMax;
  } else if (measure == "avg") {
    options.measure = DistanceMeasure::kAvg;
  } else if (measure == "nearest") {
    options.measure = DistanceMeasure::kNearestWindow;
  } else {
    return Status::InvalidArgument("unknown --measure " + measure);
  }
  return options;
}

Result<Point> ParsePoint(const std::string& text) {
  const size_t comma = text.find(',');
  if (comma == std::string::npos) {
    return Status::InvalidArgument("--q must be X,Y");
  }
  return Point{std::strtod(text.substr(0, comma).c_str(), nullptr),
               std::strtod(text.substr(comma + 1).c_str(), nullptr)};
}

int CmdGenerate(const Args& args) {
  const std::string kind = args.Get("kind", "uniform");
  const uint64_t seed = static_cast<uint64_t>(args.GetLong("seed", 1));
  Dataset dataset;
  if (kind == "uniform") {
    dataset = MakeUniform(static_cast<size_t>(args.GetLong("count", 100000)), seed);
  } else if (kind == "gaussian") {
    dataset = MakeGaussian(static_cast<size_t>(args.GetLong("count", 250000)), seed);
  } else if (kind == "ca") {
    dataset = MakeCaLike(seed, static_cast<size_t>(args.GetLong("count", 62556)));
  } else if (kind == "ny") {
    dataset = MakeNyLike(seed, static_cast<size_t>(args.GetLong("count", 255259)));
  } else {
    return Fail("unknown --kind " + kind);
  }
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("--out is required");
  const Status saved = SaveDatasetCsv(dataset, out);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf("wrote %zu objects (%s) to %s\n", dataset.size(), dataset.name.c_str(),
              out.c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  const std::string data = args.Get("data");
  const std::string out = args.Get("out");
  if (data.empty() || out.empty()) return Fail("--data and --out are required");
  Result<Dataset> dataset = LoadDatasetCsv(data, "cli");
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  RTreeOptions options;
  options.max_entries = static_cast<int>(args.GetLong("max-entries", kMaxEntriesDefault));
  options.min_entries = options.max_entries * 2 / 5;
  const Status valid = options.Validate();
  if (!valid.ok()) return Fail(valid.ToString());

  RStarTree tree(options);
  if (args.Has("str")) {
    tree = BulkLoadStr(dataset->objects, options);
  } else {
    for (const DataObject& obj : dataset->objects) tree.Insert(obj);
  }
  const Status saved = SaveTree(tree, out);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf("built %s tree: %zu objects, %zu nodes, height %d -> %s\n",
              args.Has("str") ? "STR" : "R*", tree.size(), tree.node_count(), tree.height(),
              out.c_str());
  return 0;
}

struct LoadedIndex {
  RStarTree tree;
  std::unique_ptr<IwpIndex> iwp;
  std::unique_ptr<DensityGrid> grid;
};

Result<LoadedIndex> LoadIndexFor(const Args& args, const NwcOptions& options) {
  const std::string index_path = args.Get("index");
  if (index_path.empty()) return Status::InvalidArgument("--index is required");
  Result<RStarTree> tree = LoadTree(index_path);
  if (!tree.ok()) return tree.status();
  LoadedIndex loaded{std::move(tree).value(), nullptr, nullptr};
  if (options.use_iwp) {
    loaded.iwp = std::make_unique<IwpIndex>(IwpIndex::Build(loaded.tree));
  }
  if (options.use_dep) {
    const std::string data = args.Get("data");
    if (data.empty()) {
      return Status::InvalidArgument("--data is required for DEP schemes (density grid)");
    }
    Result<Dataset> dataset = LoadDatasetCsv(data, "cli");
    if (!dataset.ok()) return dataset.status();
    loaded.grid = std::make_unique<DensityGrid>(
        NormalizedSpace(), args.GetDouble("grid-cell", 25.0), dataset->objects);
  }
  return loaded;
}

int CmdQuery(const Args& args) {
  const Result<NwcOptions> options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  const Result<Point> q = ParsePoint(args.Get("q", ""));
  if (!q.ok()) return Fail(q.status().ToString());
  Result<LoadedIndex> index = LoadIndexFor(args, *options);
  if (!index.ok()) return Fail(index.status().ToString());

  const NwcQuery query{*q, args.GetDouble("l", 8.0), args.GetDouble("w", 8.0),
                       static_cast<size_t>(args.GetLong("n", 8))};
  NwcEngine engine(index->tree, index->iwp.get(), index->grid.get());
  IoCounter io;
  const Result<NwcResult> result = engine.Execute(query, *options, &io);
  if (!result.ok()) return Fail(result.status().ToString());
  if (!result->found) {
    std::printf("no qualified window (no %g x %g window holds %zu objects)\n", query.length,
                query.width, query.n);
    return 0;
  }
  std::printf("distance %.3f (%s measure), %llu node reads\n", result->distance,
              DistanceMeasureName(options->measure),
              static_cast<unsigned long long>(io.query_total()));
  for (const DataObject& obj : result->objects) {
    std::printf("  %u (%.3f, %.3f)\n", obj.id, obj.pos.x, obj.pos.y);
  }
  return 0;
}

int CmdKnwc(const Args& args) {
  const Result<NwcOptions> options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  const Result<Point> q = ParsePoint(args.Get("q", ""));
  if (!q.ok()) return Fail(q.status().ToString());
  Result<LoadedIndex> index = LoadIndexFor(args, *options);
  if (!index.ok()) return Fail(index.status().ToString());

  const KnwcQuery query{NwcQuery{*q, args.GetDouble("l", 8.0), args.GetDouble("w", 8.0),
                                 static_cast<size_t>(args.GetLong("n", 8))},
                        static_cast<size_t>(args.GetLong("k", 4)),
                        static_cast<size_t>(args.GetLong("m", 2))};
  KnwcEngine engine(index->tree, index->iwp.get(), index->grid.get());
  IoCounter io;
  const Result<KnwcResult> result = engine.Execute(query, *options, &io);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("%zu group(s), %llu node reads\n", result->groups.size(),
              static_cast<unsigned long long>(io.query_total()));
  size_t rank = 1;
  for (const NwcGroup& group : result->groups) {
    std::printf("group %zu: distance %.3f, ids:", rank++, group.distance);
    for (const DataObject& obj : group.objects) std::printf(" %u", obj.id);
    std::printf("\n");
  }
  return 0;
}

// Human summary of a recorded trace: where the reads went, what each
// technique pruned, how deep the heap got. Printed when the JSON itself
// goes to a file.
void PrintTraceSummary(const QueryTrace& trace, const IoCounter& io) {
  std::printf("trace: %zu span(s), heap high-water %llu\n", trace.spans().size(),
              static_cast<unsigned long long>(trace.heap_high_water()));
  std::printf("reads: %llu traversal + %llu window = %llu total\n",
              static_cast<unsigned long long>(io.traversal_reads()),
              static_cast<unsigned long long>(io.window_query_reads()),
              static_cast<unsigned long long>(io.query_total()));
  for (size_t i = 0; i < kTraceCounterCount; ++i) {
    const TraceCounter counter = static_cast<TraceCounter>(i);
    if (trace.counter(counter) == 0) continue;
    std::printf("  %-22s %llu\n", TraceCounterName(counter),
                static_cast<unsigned long long>(trace.counter(counter)));
  }
}

int EmitTrace(const Args& args, const QueryTrace& trace, const IoCounter& io) {
  const std::string format = args.Get("format", "chrome");
  std::string rendered;
  if (format == "chrome") {
    rendered = ToChromeTraceJson(trace);
  } else if (format == "jsonl") {
    rendered = ToJsonl(trace);
  } else {
    return Fail("unknown --format " + format + " (expected chrome or jsonl)");
  }
  const std::string out = args.Get("out");
  if (out.empty()) {
    std::printf("%s", rendered.c_str());
    return 0;
  }
  std::ofstream file(out, std::ios::trunc);
  if (!file) return Fail("cannot open " + out + " for writing");
  file << rendered;
  if (!file.good()) return Fail("failed writing trace to " + out);
  file.close();
  std::printf("wrote %s trace (%zu bytes) to %s\n", format.c_str(), rendered.size(),
              out.c_str());
  PrintTraceSummary(trace, io);
  return 0;
}

int CmdTrace(const Args& args) {
  const Result<NwcOptions> options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  const Result<Point> q = ParsePoint(args.Get("q", ""));
  if (!q.ok()) return Fail(q.status().ToString());
  Result<LoadedIndex> index = LoadIndexFor(args, *options);
  if (!index.ok()) return Fail(index.status().ToString());

  const NwcQuery base{*q, args.GetDouble("l", 8.0), args.GetDouble("w", 8.0),
                      static_cast<size_t>(args.GetLong("n", 8))};
  IoCounter io;
  QueryTrace trace = QueryTrace::Enabled();
  if (args.Has("k")) {
    const KnwcQuery query{base, static_cast<size_t>(args.GetLong("k", 4)),
                          static_cast<size_t>(args.GetLong("m", 2))};
    KnwcEngine engine(index->tree, index->iwp.get(), index->grid.get());
    const Result<KnwcResult> result = engine.Execute(query, *options, &io, &trace);
    if (!result.ok()) return Fail(result.status().ToString());
    trace.set_label("knwc q=(" + args.Get("q") + ") scheme=" + args.Get("scheme", "star"));
  } else {
    NwcEngine engine(index->tree, index->iwp.get(), index->grid.get());
    const Result<NwcResult> result = engine.Execute(base, *options, &io, &trace);
    if (!result.ok()) return Fail(result.status().ToString());
    trace.set_label("nwc q=(" + args.Get("q") + ") scheme=" + args.Get("scheme", "star"));
  }
  return EmitTrace(args, trace, io);
}

/// Watches the process shutdown latch and cancels the backend's queued and
/// running work once a signal lands, so a blocking harvest loop unblocks
/// promptly with Cancelled responses. Joinable; Stop() ends the watch.
class DrainWatcher {
 public:
  explicit DrainWatcher(std::function<void()> cancel)
      : thread_([this, cancel = std::move(cancel)] {
          while (!stop_.load(std::memory_order_acquire)) {
            if (ShutdownSignal::Instance().requested()) {
              cancel();
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        }) {}

  ~DrainWatcher() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// ServiceConfig flags shared by `serve-batch` and `serve`.
Result<ServiceConfig> ServiceConfigFromArgs(const Args& args, const NwcOptions& options) {
  ServiceConfig service_config;
  service_config.num_threads = static_cast<size_t>(args.GetLong("threads", 4));
  service_config.queue_capacity = static_cast<size_t>(args.GetLong("queue", 256));
  service_config.default_options = options;
  service_config.worker_pool_pages = static_cast<size_t>(args.GetLong("pool-pages", 0));
  // Asking for a trace directory or a slow threshold implies tracing.
  service_config.trace_slow_queries = args.Has("trace-dir") || args.Has("slow-us");
  service_config.slow_trace_us = static_cast<uint64_t>(args.GetLong("slow-us", 0));
  service_config.trace_ring_capacity = static_cast<size_t>(args.GetLong("trace-ring", 32));
  service_config.default_deadline_micros = static_cast<uint64_t>(args.GetLong("deadline-us", 0));
  service_config.shed_queue_depth = static_cast<size_t>(args.GetLong("shed-watermark", 0));
  service_config.max_retries = static_cast<int>(args.GetLong("retries", 0));
  service_config.retry_backoff_micros =
      static_cast<uint64_t>(args.GetLong("retry-backoff-us", 100));
  if (args.Has("inject-faults")) {
    Result<FaultPlan> plan = ParseFaultPlan(args.Get("inject-faults"));
    if (!plan.ok()) return plan.status();
    service_config.fault_plan = *plan;
  }
  service_config.result_cache_bytes = static_cast<size_t>(args.GetLong("cache-mb", 0)) << 20;
  service_config.batch_group_size = static_cast<size_t>(args.GetLong("batch-group", 16));
  const Status valid = service_config.Validate();
  if (!valid.ok()) return valid;
  return service_config;
}

/// Sharding flags shared by `serve-batch` and `serve` (--shards > 1 puts a
/// ShardRouter over per-shard QueryServices; see service/shard_router.h).
/// --shard-max-l / --shard-max-w bound the windows routed queries may
/// carry (the halo basis — required with --shards > 1); --shard-halo is
/// the halo factor; --shard-partial picks the partial-failure policy;
/// --fault-shard scopes --inject-faults to one shard.
Result<ShardRouterConfig> ShardConfigFromArgs(const Args& args,
                                              const ServiceConfig& service_config,
                                              const SessionConfig& session_config, bool dynamic) {
  ShardRouterConfig config;
  config.num_shards = static_cast<size_t>(args.GetLong("shards", 1));
  config.max_window_length = args.GetDouble("shard-max-l", 0.0);
  config.max_window_width = args.GetDouble("shard-max-w", 0.0);
  config.halo_factor = args.GetDouble("shard-halo", 3.0);
  const std::string partial = args.Get("shard-partial", "fail");
  if (partial == "fail") {
    config.partial_failure = PartialFailurePolicy::kFail;
  } else if (partial == "degrade") {
    config.partial_failure = PartialFailurePolicy::kDegrade;
  } else {
    return Status::InvalidArgument("--shard-partial must be 'fail' or 'degrade'");
  }
  config.service = service_config;
  config.session = session_config;
  config.dynamic = dynamic;
  config.iwp_staleness_limit = static_cast<size_t>(args.GetLong("iwp-staleness", 0));
  config.fault_plan = service_config.fault_plan;
  config.fault_shard = static_cast<int>(args.GetLong("fault-shard", -1));
  // Router dispatch parallelism defaults to the per-shard worker count:
  // NWC routing holds a router thread across its (mostly sequential)
  // shard visits, so fewer router threads than workers would idle the
  // shard services.
  config.router_threads = static_cast<size_t>(
      args.GetLong("router-threads", static_cast<long>(service_config.num_threads)));
  config.router_queue_capacity = static_cast<size_t>(
      args.GetLong("router-queue", static_cast<long>(service_config.queue_capacity)));
  const Status valid = config.Validate();
  if (!valid.ok()) return valid;
  return config;
}

/// Future adapters over the QueryBackend callback submits, so the replay
/// loop in serve-batch is agnostic to single-tree vs sharded backends.
/// Both backends block the caller on queue backpressure, preserving the
/// submit loop's natural flow control.
std::future<NwcResponse> SubmitNwcFuture(QueryBackend& backend, NwcRequest request) {
  auto promise = std::make_shared<std::promise<NwcResponse>>();
  std::future<NwcResponse> future = promise->get_future();
  backend.SubmitNwcAsync(std::move(request), [promise](NwcResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

std::future<KnwcResponse> SubmitKnwcFuture(QueryBackend& backend, KnwcRequest request) {
  auto promise = std::make_shared<std::promise<KnwcResponse>>();
  std::future<KnwcResponse> future = promise->get_future();
  backend.SubmitKnwcAsync(std::move(request), [promise](KnwcResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

int CmdServeBatch(const Args& args) {
  const Result<NwcOptions> options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  const std::string index_path = args.Get("index");
  if (index_path.empty()) return Fail("--index is required");
  const std::string queries_path = args.Get("queries");
  if (queries_path.empty()) return Fail("--queries is required");

  Result<std::vector<WorkloadEntry>> entries = LoadWorkloadFile(queries_path);
  if (!entries.ok()) return Fail(entries.status().ToString());
  Result<RStarTree> tree = LoadTree(index_path);
  if (!tree.ok()) return Fail(tree.status().ToString());

  SessionConfig session_config;
  session_config.build_iwp = options->use_iwp;
  session_config.build_grid = options->use_dep;
  session_config.grid_cell_size = args.GetDouble("grid-cell", 25.0);

  const size_t num_shards = static_cast<size_t>(args.GetLong("shards", 1));
  if (num_shards > 1 && args.Has("batch")) {
    return Fail("--shards cannot be combined with --batch (the planned batch APIs are "
                "single-tree)");
  }

  // With --mutations the tree goes behind an MVCC SnapshotStore instead
  // of a static Session; mutation batches publish new epochs between
  // query submissions. With --shards > 1 the ShardRouter builds the
  // per-shard stacks itself from the tree's objects.
  const std::string mutations_path = args.Get("mutations");
  std::vector<MutationBatch> mutation_batches;
  std::optional<Session> session;
  std::unique_ptr<SnapshotStore> store;
  if (!mutations_path.empty()) {
    if (args.Has("batch")) {
      return Fail("--mutations cannot be combined with --batch (the batch planner "
                  "snapshots the whole file up front)");
    }
    Result<std::vector<MutationBatch>> batches = LoadMutationFile(mutations_path);
    if (!batches.ok()) return Fail(batches.status().ToString());
    mutation_batches = std::move(*batches);
    if (num_shards <= 1) {
      SnapshotStore::Config store_config;
      store_config.session = session_config;
      store_config.iwp_staleness_limit = static_cast<size_t>(args.GetLong("iwp-staleness", 0));
      Result<std::unique_ptr<SnapshotStore>> opened =
          SnapshotStore::Open(std::move(tree).value(), store_config);
      if (!opened.ok()) return Fail(opened.status().ToString());
      store = std::move(*opened);
    }
  } else if (num_shards <= 1) {
    Result<Session> opened = Session::Open(std::move(tree).value(), session_config);
    if (!opened.ok()) return Fail(opened.status().ToString());
    session.emplace(std::move(*opened));
  }

  Result<ServiceConfig> service_config = ServiceConfigFromArgs(args, *options);
  if (!service_config.ok()) return Fail(service_config.status().ToString());

  // SIGINT/SIGTERM drain: cancel in-flight work so the harvest below
  // finishes promptly (with Cancelled responses) and the metrics outputs
  // are still written — a signal must not lose the run's report.
  const Status installed = ShutdownSignal::Instance().Install();
  if (!installed.ok()) return Fail(installed.ToString());

  std::optional<QueryService> service_holder;
  std::unique_ptr<ShardRouter> router;
  QueryBackend* backend = nullptr;
  if (num_shards > 1) {
    const Result<ShardRouterConfig> shard_config =
        ShardConfigFromArgs(args, *service_config, session_config, !mutations_path.empty());
    if (!shard_config.ok()) return Fail(shard_config.status().ToString());
    Result<std::unique_ptr<ShardRouter>> opened =
        ShardRouter::Open(CollectTreeObjects(*tree), *shard_config);
    if (!opened.ok()) return Fail(opened.status().ToString());
    router = std::move(*opened);
    backend = router.get();
  } else if (store != nullptr) {
    service_holder.emplace(*store, *service_config);
    backend = &*service_holder;
  } else {
    service_holder.emplace(*session, *service_config);
    backend = &*service_holder;
  }
  DrainWatcher drain_watcher([&service_holder, &router] {
    if (router != nullptr) {
      router->CancelAll();
    } else {
      service_holder->CancelAll();
    }
  });
  if (router != nullptr) {
    std::printf("serving %zu queries from %s across %zu shard(s) x %zu worker(s), scheme %s%s\n",
                entries->size(), queries_path.c_str(), router->num_shards(),
                service_config->num_threads, args.Get("scheme", "star").c_str(),
                router->is_dynamic() ? " (dynamic)" : "");
  } else {
    std::printf("serving %zu queries from %s across %zu worker(s), scheme %s%s\n",
                entries->size(), queries_path.c_str(), service_holder->num_workers(),
                args.Get("scheme", "star").c_str(), store != nullptr ? " (dynamic)" : "");
  }

  // Submit everything in file order (blocking submit = natural
  // backpressure), then harvest the futures in the same order. With
  // --batch the two query kinds go through the planned batch APIs
  // instead; either way futures come back in per-kind submission order,
  // so the harvest loop below is shared.
  std::vector<std::future<NwcResponse>> nwc_futures;
  std::vector<std::future<KnwcResponse>> knwc_futures;
  UpdateResponse last_update;
  Stopwatch wall;
  if (args.Has("batch")) {
    std::vector<NwcRequest> nwc_requests;
    std::vector<KnwcRequest> knwc_requests;
    for (const WorkloadEntry& entry : *entries) {
      if (entry.is_knwc) {
        knwc_requests.push_back(KnwcRequest{entry.knwc, {}});
      } else {
        nwc_requests.push_back(NwcRequest{entry.nwc, {}});
      }
    }
    nwc_futures = service_holder->SubmitNwcBatch(nwc_requests);
    knwc_futures = service_holder->SubmitKnwcBatch(knwc_requests);
  } else {
    // Mutation batches publish after every `mutate_every` submitted
    // queries — by default spaced so the stream outlives the batches.
    const size_t mutate_every =
        mutation_batches.empty()
            ? 0
            : std::max<size_t>(
                  1, args.Has("mutate-every")
                         ? static_cast<size_t>(args.GetLong("mutate-every", 1))
                         : entries->size() / (mutation_batches.size() + 1));
    size_t next_batch = 0;
    size_t since_mutation = 0;
    for (const WorkloadEntry& entry : *entries) {
      if (mutate_every != 0 && since_mutation >= mutate_every &&
          next_batch < mutation_batches.size()) {
        // NotFound (delete misses) is tolerated: a replay against a
        // different seed tree may legitimately miss.
        const UpdateResponse update = backend->ApplyUpdate(mutation_batches[next_batch++]);
        if (!update.status.ok() && update.status.code() != StatusCode::kNotFound) {
          return Fail(update.status.ToString());
        }
        last_update = update;
        since_mutation = 0;
      }
      if (entry.is_knwc) {
        knwc_futures.push_back(SubmitKnwcFuture(*backend, KnwcRequest{entry.knwc, {}}));
      } else {
        nwc_futures.push_back(SubmitNwcFuture(*backend, NwcRequest{entry.nwc, {}}));
      }
      ++since_mutation;
    }
    // Leftover batches (short query file): apply them so the replay is
    // complete even if nothing queries the final epochs.
    while (next_batch < mutation_batches.size()) {
      const UpdateResponse update = backend->ApplyUpdate(mutation_batches[next_batch++]);
      if (!update.status.ok() && update.status.code() != StatusCode::kNotFound) {
        return Fail(update.status.ToString());
      }
      last_update = update;
    }
  }

  const bool print_each = args.Has("print");
  size_t failures = 0;
  size_t next_nwc = 0;
  size_t next_knwc = 0;
  for (const WorkloadEntry& entry : *entries) {
    if (entry.is_knwc) {
      const KnwcResponse response = knwc_futures[next_knwc++].get();
      if (!response.status.ok()) ++failures;
      if (print_each) {
        if (!response.status.ok()) {
          std::printf("knwc: %s\n", response.status.ToString().c_str());
        } else {
          std::printf("knwc (%.1f, %.1f): %zu group(s), %llu us, %llu reads\n", entry.knwc.base.q.x,
                      entry.knwc.base.q.y, response.result.groups.size(),
                      static_cast<unsigned long long>(response.latency_micros),
                      static_cast<unsigned long long>(response.traversal_reads +
                                                      response.window_query_reads));
        }
      }
    } else {
      const NwcResponse response = nwc_futures[next_nwc++].get();
      if (!response.status.ok()) ++failures;
      if (print_each) {
        if (!response.status.ok()) {
          std::printf("nwc: %s\n", response.status.ToString().c_str());
        } else if (!response.result.found) {
          std::printf("nwc (%.1f, %.1f): no window, %llu us, %llu reads\n", entry.nwc.q.x,
                      entry.nwc.q.y, static_cast<unsigned long long>(response.latency_micros),
                      static_cast<unsigned long long>(response.traversal_reads +
                                                      response.window_query_reads));
        } else {
          std::printf("nwc (%.1f, %.1f): found distance %.3f, %llu us, %llu reads\n",
                      entry.nwc.q.x, entry.nwc.q.y, response.result.distance,
                      static_cast<unsigned long long>(response.latency_micros),
                      static_cast<unsigned long long>(response.traversal_reads +
                                                      response.window_query_reads));
        }
      }
    }
  }
  const double seconds = wall.ElapsedSeconds();

  const MetricsSnapshot snapshot = backend->SnapshotMetrics();
  std::printf("\n--- metrics report ---\n");
  std::printf("wall time:  %.3f s (%.1f queries/sec)\n", seconds,
              seconds > 0.0 ? static_cast<double>(snapshot.queries) / seconds : 0.0);
  if (store != nullptr) {
    std::printf("mutations:  %zu batch(es) applied, final epoch %llu, %zu object(s)\n",
                mutation_batches.size(), static_cast<unsigned long long>(store->epoch()),
                store->writer_object_count());
  } else if (router != nullptr && !mutation_batches.empty()) {
    // The router has no single writer store; report the last update's
    // owner-shard view (max per-shard epoch, counts from the final batch).
    std::printf("mutations:  %zu batch(es) applied, final epoch %llu (last batch: %llu "
                "insert(s), %llu delete(s), %llu miss(es))\n",
                mutation_batches.size(), static_cast<unsigned long long>(last_update.epoch),
                static_cast<unsigned long long>(last_update.applied_inserts),
                static_cast<unsigned long long>(last_update.applied_deletes),
                static_cast<unsigned long long>(last_update.delete_misses));
  }
  std::printf("%s", snapshot.ToString().c_str());

  const std::string metrics_json = args.Get("metrics-json");
  if (!metrics_json.empty()) {
    std::ofstream file(metrics_json, std::ios::trunc);
    if (!file) return Fail("cannot open " + metrics_json + " for writing");
    file << snapshot.ToJson() << "\n";
    if (!file.good()) return Fail("failed writing " + metrics_json);
    std::printf("wrote metrics JSON to %s\n", metrics_json.c_str());
  }
  const std::string prom = args.Get("prom");
  if (!prom.empty()) {
    std::ofstream file(prom, std::ios::trunc);
    if (!file) return Fail("cannot open " + prom + " for writing");
    std::string text = ToPrometheusText(snapshot, backend->SnapshotLatencyHistogram());
    backend->AppendPrometheusText(&text);
    file << text;
    if (!file.good()) return Fail("failed writing " + prom);
    std::printf("wrote Prometheus metrics to %s\n", prom.c_str());
  }
  const std::string trace_dir = args.Get("trace-dir");
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec) return Fail("cannot create " + trace_dir + ": " + ec.message());
    const auto traces = backend->SlowTraces();
    size_t written = 0;
    for (const auto& trace : traces) {
      char name[32];
      std::snprintf(name, sizeof(name), "slow_%03zu.json", written);
      const std::string path = (std::filesystem::path(trace_dir) / name).string();
      std::ofstream file(path, std::ios::trunc);
      if (!file) return Fail("cannot open " + path + " for writing");
      file << ToChromeTraceJson(*trace);
      if (!file.good()) return Fail("failed writing " + path);
      ++written;
    }
    std::printf("wrote %zu slow-query trace(s) (>= %llu us) to %s\n", written,
                static_cast<unsigned long long>(service_config->slow_trace_us),
                trace_dir.c_str());
  }
  if (ShutdownSignal::Instance().requested()) {
    std::printf("drained after signal: in-flight queries finished, outputs written\n");
    return 0;
  }
  return failures == 0 ? 0 : 1;
}

int CmdServe(const Args& args) {
  const Result<NwcOptions> options = ParseOptions(args);
  if (!options.ok()) return Fail(options.status().ToString());
  const std::string index_path = args.Get("index");
  if (index_path.empty()) return Fail("--index is required");
  Result<RStarTree> tree = LoadTree(index_path);
  if (!tree.ok()) return Fail(tree.status().ToString());

  // Unlike serve-batch, remote clients may override the scheme per
  // request, so build every auxiliary structure unless told otherwise.
  SessionConfig session_config;
  session_config.build_iwp = !args.Has("no-iwp");
  session_config.build_grid = !args.Has("no-grid");
  session_config.grid_cell_size = args.GetDouble("grid-cell", 25.0);

  const size_t num_shards = static_cast<size_t>(args.GetLong("shards", 1));
  std::optional<Session> session;
  std::unique_ptr<SnapshotStore> store;
  if (num_shards > 1) {
    // The ShardRouter builds its own per-shard stacks below.
  } else if (args.Has("dynamic")) {
    SnapshotStore::Config store_config;
    store_config.session = session_config;
    store_config.iwp_staleness_limit = static_cast<size_t>(args.GetLong("iwp-staleness", 0));
    Result<std::unique_ptr<SnapshotStore>> opened =
        SnapshotStore::Open(std::move(tree).value(), store_config);
    if (!opened.ok()) return Fail(opened.status().ToString());
    store = std::move(*opened);
  } else {
    Result<Session> opened = Session::Open(std::move(tree).value(), session_config);
    if (!opened.ok()) return Fail(opened.status().ToString());
    session.emplace(std::move(*opened));
  }

  Result<ServiceConfig> service_config = ServiceConfigFromArgs(args, *options);
  if (!service_config.ok()) return Fail(service_config.status().ToString());

  NetServerConfig net_config;
  net_config.host = args.Get("host", "127.0.0.1");
  net_config.port = static_cast<uint16_t>(args.GetLong("port", 0));
  net_config.max_frame_bytes = static_cast<size_t>(args.GetLong("max-frame-bytes", 1 << 20));

  const Status installed = ShutdownSignal::Instance().Install();
  if (!installed.ok()) return Fail(installed.ToString());

  std::optional<QueryService> service_holder;
  std::unique_ptr<ShardRouter> router;
  QueryBackend* backend = nullptr;
  if (num_shards > 1) {
    const Result<ShardRouterConfig> shard_config =
        ShardConfigFromArgs(args, *service_config, session_config, args.Has("dynamic"));
    if (!shard_config.ok()) return Fail(shard_config.status().ToString());
    Result<std::unique_ptr<ShardRouter>> opened =
        ShardRouter::Open(CollectTreeObjects(*tree), *shard_config);
    if (!opened.ok()) return Fail(opened.status().ToString());
    router = std::move(*opened);
    backend = router.get();
  } else if (store != nullptr) {
    service_holder.emplace(*store, *service_config);
    backend = &*service_holder;
  } else {
    service_holder.emplace(*session, *service_config);
    backend = &*service_holder;
  }
  Result<std::unique_ptr<NetServer>> server = NetServer::Start(*backend, net_config);
  if (!server.ok()) return Fail(server.status().ToString());

  if (router != nullptr) {
    std::printf("listening on %s:%u (%zu shard(s) x %zu worker(s), scheme %s%s)\n",
                net_config.host.c_str(), static_cast<unsigned>((*server)->port()),
                router->num_shards(), service_config->num_threads,
                args.Get("scheme", "star").c_str(), router->is_dynamic() ? ", dynamic" : "");
  } else {
    std::printf("listening on %s:%u (%zu worker(s), scheme %s%s)\n", net_config.host.c_str(),
                static_cast<unsigned>((*server)->port()), service_holder->num_workers(),
                args.Get("scheme", "star").c_str(), store != nullptr ? ", dynamic" : "");
  }
  std::fflush(stdout);

  ShutdownSignal::Instance().WaitUntilRequested();
  std::printf("signal received: draining\n");
  std::fflush(stdout);
  (*server)->RequestDrain();
  (*server)->Wait();

  const NetServer::Stats stats = (*server)->GetStats();
  std::printf("drained: %llu frame(s) in, %llu response(s) out, %llu protocol error(s), "
              "%llu connection(s)\n",
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.responses_sent),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.connections_accepted));
  const MetricsSnapshot snapshot = backend->SnapshotMetrics();
  std::printf("%s", snapshot.ToString().c_str());

  const std::string metrics_json = args.Get("metrics-json");
  if (!metrics_json.empty()) {
    std::ofstream file(metrics_json, std::ios::trunc);
    if (!file) return Fail("cannot open " + metrics_json + " for writing");
    file << snapshot.ToJson() << "\n";
    if (!file.good()) return Fail("failed writing " + metrics_json);
  }
  const std::string prom = args.Get("prom");
  if (!prom.empty()) {
    std::ofstream file(prom, std::ios::trunc);
    if (!file) return Fail("cannot open " + prom + " for writing");
    std::string text = ToPrometheusText(snapshot, backend->SnapshotLatencyHistogram());
    backend->AppendPrometheusText(&text);
    file << text;
    if (!file.good()) return Fail("failed writing " + prom);
  }
  return 0;
}

int CmdStats(const Args& args) {
  const std::string index_path = args.Get("index");
  if (index_path.empty()) return Fail("--index is required");
  Result<RStarTree> tree = LoadTree(index_path);
  if (!tree.ok()) return Fail(tree.status().ToString());
  const Status valid = ValidateTree(*tree);
  std::printf("objects:  %zu\n", tree->size());
  std::printf("nodes:    %zu (%zu bytes as pages)\n", tree->node_count(),
              tree->StorageBytes());
  std::printf("height:   %d\n", tree->height());
  std::printf("fanout:   max %d / min %d\n", tree->options().max_entries,
              tree->options().min_entries);
  std::printf("split:    %s\n", SplitAlgorithmName(tree->options().split_algorithm));
  std::printf("valid:    %s\n", valid.ok() ? "yes" : valid.ToString().c_str());
  const Rect bounds = tree->bounds();
  std::printf("bounds:   [%.1f, %.1f] x [%.1f, %.1f]\n", bounds.min_x, bounds.max_x,
              bounds.min_y, bounds.max_y);
  std::printf("%s", ComputeTreeStats(*tree).ToString().c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: nwc_tool <generate|build|query|knwc|trace|stats|serve-batch|serve>"
               " [--key=value ...]\n"
               "see the header of tools/nwc_tool.cc for the full reference\n");
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (command == "generate") return CmdGenerate(args);
  if (command == "build") return CmdBuild(args);
  if (command == "query") return CmdQuery(args);
  if (command == "knwc") return CmdKnwc(args);
  if (command == "trace") return CmdTrace(args);
  if (command == "stats") return CmdStats(args);
  if (command == "serve-batch") return CmdServeBatch(args);
  if (command == "serve") return CmdServe(args);
  return Usage();
}

}  // namespace
}  // namespace nwc

int main(int argc, char** argv) { return nwc::Run(argc, argv); }
