// nwc_load — open-loop load generator for `nwc_tool serve`.
//
//   nwc_load --port=PORT [--host=127.0.0.1] [--qps=1000] [--connections=4]
//            [--pipeline=32] [--duration=2] [--deadline-us=0]
//            [--queries=F.txt | --synthetic=N] [--seed=1]
//            [--scheme=<plain|srr|dip|dep|iwp|plus|star>]
//            [--measure=<min|max|avg|nearest>] [--trace]
//
// Holds the target arrival rate regardless of server speed (open loop):
// request i is due at start + i/qps and its latency is measured from that
// due time, so server-side queueing is charged to the server rather than
// silently thinning the arrival stream (no coordinated omission). Requests
// fan out over --connections pipelined connections with at most --pipeline
// in flight each.
//
// The workload is either a query file in the serve-batch format
// ("nwc X Y L W N" / "knwc X Y L W N K M" lines) cycled round-robin, or —
// with --synthetic=N — N deterministic queries over the normalized data
// space, 80% of them aimed at a central hotspot covering 20% of each axis
// (the classic skew rule), every eighth one a kNWC query.
//
// Without --scheme/--measure requests carry no option override and run
// under the server's default preset. Exit code 0 when every request was
// answered (typed error responses included), 1 otherwise.
//
// --trace sets the envelope trace bit on every request: the server
// annotates each response with its pipeline timestamps and the report
// gains a second line splitting latency into network, server-queue, and
// execute components — the fastest way to tell whether a p99 regression
// is queueing or query work (see EXPERIMENTS.md).
//
// Prints achieved QPS and p50/p95/p99/max latency (linear-interpolated
// quantiles over the full sample); see EXPERIMENTS.md for the
// server-path benchmark recipe built on this tool.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datasets/dataset.h"
#include "net/load_gen.h"
#include "service/workload.h"

namespace nwc {
namespace {

// --key=value argument bag (same convention as nwc_tool).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        values_[std::string(arg + 2)] = "true";
      } else {
        values_[std::string(arg + 2, eq)] = std::string(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  long GetLong(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Result<std::optional<NwcOptions>> ParseOptionOverride(const Args& args) {
  if (!args.Has("scheme") && !args.Has("measure")) return std::optional<NwcOptions>{};
  NwcOptions options = NwcOptions::Star();
  const std::string scheme = args.Get("scheme", "star");
  if (scheme == "plain") {
    options = NwcOptions::Plain();
  } else if (scheme == "srr") {
    options = NwcOptions::Srr();
  } else if (scheme == "dip") {
    options = NwcOptions::Dip();
  } else if (scheme == "dep") {
    options = NwcOptions::Dep();
  } else if (scheme == "iwp") {
    options = NwcOptions::Iwp();
  } else if (scheme == "plus") {
    options = NwcOptions::Plus();
  } else if (scheme == "star") {
    options = NwcOptions::Star();
  } else {
    return Status::InvalidArgument("unknown --scheme " + scheme);
  }
  const std::string measure = args.Get("measure", "nearest");
  if (measure == "min") {
    options.measure = DistanceMeasure::kMin;
  } else if (measure == "max") {
    options.measure = DistanceMeasure::kMax;
  } else if (measure == "avg") {
    options.measure = DistanceMeasure::kAvg;
  } else if (measure == "nearest") {
    options.measure = DistanceMeasure::kNearestWindow;
  } else {
    return Status::InvalidArgument("unknown --measure " + measure);
  }
  return std::optional<NwcOptions>{options};
}

int Run(int argc, char** argv) {
  const Args args(argc, argv, 1);
  if (!args.Has("port")) {
    std::fprintf(stderr,
                 "usage: nwc_load --port=PORT [--host=H] [--qps=N] [--connections=N]\n"
                 "                [--pipeline=N] [--duration=SECONDS] [--deadline-us=N]\n"
                 "                [--queries=F.txt | --synthetic=N] [--seed=S]\n"
                 "                [--scheme=...] [--measure=...] [--trace]\n"
                 "see the header of tools/nwc_load.cc for the full reference\n");
    return 2;
  }

  LoadGenConfig config;
  config.host = args.Get("host", "127.0.0.1");
  config.port = static_cast<uint16_t>(args.GetLong("port", 0));
  config.target_qps = args.GetDouble("qps", 1000.0);
  config.connections = static_cast<size_t>(args.GetLong("connections", 4));
  config.pipeline_depth = static_cast<size_t>(args.GetLong("pipeline", 32));
  config.duration_seconds = args.GetDouble("duration", 2.0);
  config.deadline_micros = static_cast<uint64_t>(args.GetLong("deadline-us", 0));
  config.trace = args.Has("trace");
  Result<std::optional<NwcOptions>> options = ParseOptionOverride(args);
  if (!options.ok()) return Fail(options.status().ToString());
  config.options = *options;

  std::vector<WorkloadEntry> workload;
  if (args.Has("queries")) {
    Result<std::vector<WorkloadEntry>> loaded = LoadWorkloadFile(args.Get("queries"));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    workload = std::move(loaded).value();
  } else {
    workload = MakeSkewedWorkload(static_cast<size_t>(args.GetLong("synthetic", 256)),
                                  static_cast<uint64_t>(args.GetLong("seed", 1)),
                                  NormalizedSpace());
  }

  std::printf("nwc_load: %s:%u, %.0f q/s target, %zu connection(s) x depth %zu, %.1f s, "
              "%zu-query workload%s\n",
              config.host.c_str(), static_cast<unsigned>(config.port), config.target_qps,
              config.connections, config.pipeline_depth, config.duration_seconds,
              workload.size(), config.trace ? ", traced" : "");
  Result<LoadGenReport> report = RunLoadGen(config, workload);
  if (!report.ok()) return Fail(report.status().ToString());
  std::printf("%s", report->ToString().c_str());
  return report->lost == 0 && report->received == report->sent ? 0 : 1;
}

}  // namespace
}  // namespace nwc

int main(int argc, char** argv) { return nwc::Run(argc, argv); }
