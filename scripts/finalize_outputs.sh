#!/usr/bin/env bash
# Appends the extension benches (added after the main suite was launched)
# to bench_output.txt and records the final test log. Run from the repo
# root after `for b in build/bench/*; do $b; done | tee bench_output.txt`.
set -u

cd "$(dirname "$0")/.."

echo "== appending extension benches to bench_output.txt =="
for b in ablation_index_build ablation_query_distribution sec42_knwc_model; do
  echo "--- $b ---"
  ./build/bench/"$b" 2>&1 | tee -a bench_output.txt
done

echo "== recording final test log =="
ctest --test-dir build 2>&1 | tee test_output.txt
